"""Set-associative write-back caches and the inclusive cache hierarchy.

The hierarchy is the centrepiece of Problem #1 (Section 4.1): even when an
application writes sequentially, pseudo-random replacement scrambles the
order in which dirty lines reach memory, and a device with a write
granularity larger than the CPU line suffers write amplification.

Model choices (documented in DESIGN.md):

* Caches are **inclusive**: a line present in L1 is present in every level
  below it.  Evicting a line from the last level back-invalidates the
  upper levels, collecting dirtiness on the way (the victim's most recent
  data must reach memory).
* Dirtiness lives at the *innermost* level holding the line; when an inner
  level evicts a dirty line, the dirt moves one level out.
* The hierarchy is shared by all simulated cores.  Private L1s would only
  change constants; the eviction-order scrambling the paper measures comes
  from the shared last level, which this models directly.

Storage layout (DESIGN.md §15): each level keeps its tags and dirty bits
as flat structure-of-arrays — one tags array and one dirty byte array of
``num_sets * ways`` slots, plus a ``line -> slot`` index — instead of
per-way objects.  The flat slot number (``set * ways + way``) is the only
handle the hot paths pass around, and bulk operations (the end-of-run
drain, state snapshots) read the arrays columnwise, with numpy when it is
available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.replacement import (
    _PLRU_LUT_MAX_WAYS,
    IntelLikePolicy,
    ReplacementPolicy,
    _plru_lut,
)

try:  # pragma: no cover - exercised implicitly everywhere numpy exists
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None  # type: ignore[assignment]

__all__ = ["CacheLevelSpec", "CacheStats", "CacheLevel", "Eviction", "CacheHierarchy"]

#: Tag value of an empty slot (line numbers are non-negative).
EMPTY = -1


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    #: Load-to-use latency of a hit at this level, in cycles.
    hit_latency: int
    #: Use hashed (slice-style) set indexing at this level.
    hashed_index: bool = False

    def validate(self, line_size: int) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.hit_latency < 0:
            raise ConfigurationError(f"{self.name}: sizes, ways and latency must be positive")
        if self.size_bytes % (self.ways * line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line_size = {self.ways * line_size}"
            )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    cleans: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per access; NaN when the level was never accessed (see
        the derived-ratio convention in :mod:`repro.sim.stats`)."""
        if self.accesses == 0:
            return float("nan")
        return self.hits / self.accesses


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of a cache level."""

    line: int
    dirty: bool


class CacheLevel:
    """One set-associative, write-back, write-allocate cache level.

    ``hashed_index`` spreads lines across sets with a multiplicative hash
    instead of simple modulo, modelling the slice/set hashing of modern
    last-level caches.  Hashing matters for Problem #1: it decouples the
    sets of the (consecutive) lines that make up one device-granularity
    block, so their evictions are *not* naturally co-scheduled — which is
    part of why hardware eviction order looks random to the device.

    State is structure-of-arrays: ``_tags[slot]`` holds the resident line
    (:data:`EMPTY` for a free way), ``_dirty[slot]`` its dirty bit, and
    ``_index`` maps a line to its flat slot.  ``slot = set * ways + way``.
    """

    def __init__(
        self,
        spec: CacheLevelSpec,
        line_size: int,
        policy: ReplacementPolicy,
    ) -> None:
        spec.validate(line_size)
        self.spec = spec
        self.line_size = line_size
        self.policy = policy
        # Read from the spec — a separate constructor argument used to
        # shadow ``spec.hashed_index``, silently dropping LLC hashing for
        # direct constructions that forgot to pass it twice.
        self.hashed_index = spec.hashed_index
        self.num_sets = spec.size_bytes // (spec.ways * line_size)
        self._ways = spec.ways
        slots = self.num_sets * spec.ways
        self._tags: List[int] = [EMPTY] * slots
        self._dirty = bytearray(slots)
        #: Occupied ways per set; lets installs skip the empty-way scan
        #: once a set is full (the steady state of every miss stream).
        self._set_fill: List[int] = [0] * self.num_sets
        self._policy_state = [policy.new_set(spec.ways) for _ in range(self.num_sets)]
        # line -> flat slot; the fast path for lookups.
        self._index: Dict[int, int] = {}
        # line -> hashed set index, memoised (bounded by touched lines).
        self._set_cache: Dict[int, int] = {}
        #: Whether repeated ``on_access`` calls may be collapsed to one
        #: (see ReplacementPolicy.idempotent_on_access).
        self._idempotent_policy = bool(getattr(policy, "idempotent_on_access", False))
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------

    def set_index(self, line: int) -> int:
        """The set a line maps to (modulo, or hashed when configured)."""
        if self.hashed_index:
            cached = self._set_cache.get(line)
            if cached is None:
                # Fibonacci hashing: cheap, deterministic, well spread.
                cached = ((line * 0x9E3779B97F4A7C15) >> 17) % self.num_sets
                self._set_cache[line] = cached
            return cached
        return line % self.num_sets

    def contains(self, line: int) -> bool:
        return line in self._index

    def is_dirty(self, line: int) -> bool:
        slot = self._index.get(line)
        if slot is None:
            return False
        return bool(self._dirty[slot])

    def resident_lines(self) -> Iterator[int]:
        """All lines currently cached at this level."""
        return iter(self._index)

    def walk_lines(self) -> Iterator[int]:
        """Resident lines in physical (set, way) order.

        This is the order a ``wbinvd``-style walk pushes dirty lines out
        in — *not* address order.  With hashed set indexing consecutive
        addresses land in unrelated sets, so a flush stream is as
        scrambled as ordinary evictions; draining in sorted address order
        would fabricate merging the hardware cannot do.
        """
        for tag in self._tags:
            if tag != EMPTY:
                yield tag

    def tags_array(self):
        """The tags column as a numpy array (copy); list without numpy.

        Slot order is physical (set, way) order; :data:`EMPTY` marks a
        free way.  Bulk readers (state snapshots, the fault harness's
        dirty-set capture, tests) use this instead of walking slots.
        """
        if _np is None:  # pragma: no cover - numpy is in the standard image
            return list(self._tags)
        return _np.array(self._tags, dtype=_np.int64)

    def dirty_array(self):
        """The dirty column as a numpy uint8 view (zero-copy) or bytes."""
        if _np is None:  # pragma: no cover - numpy is in the standard image
            return bytes(self._dirty)
        return _np.frombuffer(self._dirty, dtype=_np.uint8)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.spec.ways

    def occupancy(self) -> int:
        return len(self._index)

    # -- mutations -------------------------------------------------------

    def access(self, line: int, is_write: bool) -> bool:
        """Look up ``line``; on a hit, update recency and dirtiness.

        Returns True on hit.  Misses are *not* filled here — the hierarchy
        decides fill order; see :meth:`install`.
        """
        slot = self._index.get(line)
        if slot is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        ways = self._ways
        set_i = slot // ways
        self.policy.on_access(self._policy_state[set_i], slot - set_i * ways)
        if is_write:
            self._dirty[slot] = 1
        return True

    def install(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Bring ``line`` in, evicting a victim if its set is full.

        Returns the eviction (if any).  Installing an already-present line
        just refreshes recency and ORs in the dirty bit.
        """
        ways = self._ways
        slot = self._index.get(line)
        if slot is not None:
            set_i = slot // ways
            self.policy.on_access(self._policy_state[set_i], slot - set_i * ways)
            if dirty:
                self._dirty[slot] = 1
            return None
        set_i = self.set_index(line)
        tags = self._tags
        base = set_i * ways
        evicted: Optional[Eviction] = None
        way_i = -1
        if self._set_fill[set_i] < ways:
            for i in range(ways):
                if tags[base + i] == EMPTY:
                    way_i = i
                    break
            self._set_fill[set_i] += 1
        if way_i < 0:
            way_i = self.policy.victim(self._policy_state[set_i])
            vslot = base + way_i
            victim_line = tags[vslot]
            if victim_line == EMPTY:
                # The empty-way scan above ran first, so a full set is an
                # invariant here: every way the policy may rank holds a
                # resident line.  Tested in tests/test_cache_invariants.py.
                raise SimulationError(f"{self.spec.name}: policy chose an empty way as victim")
            victim_dirty = self._dirty[vslot]
            evicted = Eviction(victim_line, bool(victim_dirty))
            del self._index[victim_line]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        slot = base + way_i
        tags[slot] = line
        self._dirty[slot] = 1 if dirty else 0
        self._index[line] = slot
        self.policy.on_insert(self._policy_state[set_i], way_i)
        return evicted

    def clean(self, line: int) -> bool:
        """Clear the dirty bit, keeping the line resident.

        Returns True if the line was present and dirty (i.e. a writeback
        is owed to the next level).  This is the cache-state effect of a
        *clean* pre-store (``clwb``): data stays cached.
        """
        slot = self._index.get(line)
        if slot is None:
            return False
        was_dirty = bool(self._dirty[slot])
        self._dirty[slot] = 0
        if was_dirty:
            self.stats.cleans += 1
        return was_dirty

    def invalidate(self, line: int) -> Tuple[bool, bool]:
        """Drop ``line``; returns ``(was_present, was_dirty)``."""
        slot = self._index.pop(line, None)
        if slot is None:
            return (False, False)
        was_dirty = bool(self._dirty[slot])
        self._tags[slot] = EMPTY
        self._dirty[slot] = 0
        self._set_fill[slot // self._ways] -= 1
        self.stats.invalidations += 1
        return (True, was_dirty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheLevel {self.spec.name}: {self.spec.size_bytes}B, "
            f"{self.num_sets}x{self.spec.ways} ways, line={self.line_size}B>"
        )


def _build_fill_all(levels: Sequence["CacheLevel"]):
    """Generate the fused miss-everywhere fill walk (DESIGN.md §15).

    Emits one specialised ``fill_all(line, wb) -> int`` that installs
    ``line`` into every level, outermost first — first-empty-way scan,
    else the policy's fused ``evict_insert`` — propagating evictions the
    way the generic walk does: an inner victim pushes its dirt one level
    out (inclusion keeps it resident below), the last-level victim
    back-invalidates the inner columns, and dirt that reaches memory is
    appended to ``wb``.  Returns the innermost (L1) slot the line landed
    in.

    The source is generated per hierarchy and ``exec``-compiled once
    (the ``collections.namedtuple`` technique), so every per-level
    constant — way count, set count, hash choice, policy flavour — is
    baked in as a literal and every column is a plain name binding: a
    three-level cold fill runs without a single Python call beyond the
    policy's RNG draw.  Levels running :class:`IntelLikePolicy` on
    LUT-sized sets get the victim pick and recency touch emitted as the
    table lookups ``evict_insert``/``on_access`` would perform —
    identical RNG draws, identical state transitions — while any other
    policy keeps its bound method calls, so seeded runs are
    bit-identical to the generic walk either way.
    """
    last = len(levels) - 1
    ns: dict = {"SimulationError": SimulationError}
    src = ["def fill_all(line, wb):"]
    for i in range(last, -1, -1):
        lvl = levels[i]
        ways = lvl._ways
        ns[f"t{i}"] = lvl._tags
        ns[f"d{i}"] = lvl._dirty
        ns[f"x{i}"] = lvl._index
        ns[f"p{i}"] = lvl._policy_state
        ns[f"fl{i}"] = lvl._set_fill
        ns[f"st{i}"] = lvl.stats
        policy = lvl.policy
        intel = type(policy) is IntelLikePolicy and ways <= _PLRU_LUT_MAX_WAYS
        if intel:
            ns[f"a{i}"], ns[f"o{i}"], ns[f"v{i}"] = _plru_lut(ways)
            ns[f"r{i}"] = policy._rand
        else:
            ns[f"oi{i}"] = policy.on_insert
            ns[f"ei{i}"] = policy.evict_insert
            ns[f"oa{i}"] = policy.on_access
        src.append(f"    # -- {lvl.spec.name} --")
        if lvl.hashed_index:
            src.append(f"    set_i = ((line * 0x9E3779B97F4A7C15) >> 17) % {lvl.num_sets}")
        else:
            src.append(f"    set_i = line % {lvl.num_sets}")
        src.append(f"    base = set_i * {ways}")
        src.append(f"    if fl{i}[set_i] < {ways}:")
        src.append(f"        slot = base")
        src.append(f"        while t{i}[slot] != {EMPTY}:")
        src.append( "            slot += 1")
        src.append(f"        t{i}[slot] = line")
        src.append(f"        d{i}[slot] = 0")
        src.append(f"        x{i}[line] = slot")
        src.append(f"        fl{i}[set_i] += 1")
        if intel:
            src.append( "        w = slot - base")
            src.append(f"        s = p{i}[set_i]")
            src.append(f"        s[0] = (s[0] & a{i}[w]) | o{i}[w]")
        else:
            src.append(f"        oi{i}(p{i}[set_i], slot - base)")
        if i == 0:
            src.append("        return slot")
            E = "    "
        else:
            src.append("    else:")
            E = "        "
        if intel:
            src.append(E + f"s = p{i}[set_i]")
            src.append(E + "si = s[0]")
            src.append(E + f"if r{i}() < {policy.random_prob!r}:")
            src.append(E + f"    w = int(r{i}() * {ways})")
            src.append(E + "else:")
            src.append(E + f"    w = v{i}[si]")
            src.append(E + f"s[0] = (si & a{i}[w]) | o{i}[w]")
        else:
            src.append(E + f"w = ei{i}(p{i}[set_i])")
        src.append(E + "vslot = base + w")
        src.append(E + f"victim = t{i}[vslot]")
        src.append(E + f"if victim == {EMPTY}:")
        # The set is full here (set_fill == ways), so every way the
        # policy may rank holds a resident line; a miss means the policy
        # state desynced from the tag column.
        src.append(E + f"    raise SimulationError({lvl.spec.name!r} + ': policy chose an empty way as victim')")
        src.append(E + f"vd = d{i}[vslot]")
        src.append(E + f"del x{i}[victim]")
        src.append(E + f"st{i}.evictions += 1")
        src.append(E + "if vd:")
        src.append(E + f"    st{i}.dirty_evictions += 1")
        src.append(E + f"t{i}[vslot] = line")
        src.append(E + f"d{i}[vslot] = 0")
        src.append(E + f"x{i}[line] = vslot")
        if i == last:
            src.append(E + "owed = vd != 0")
            for j in range(last):
                src.append(E + f"islot = x{j}.pop(victim, None)")
                src.append(E + "if islot is not None:")
                src.append(E + f"    if d{j}[islot]:")
                src.append(E + "        owed = True")
                src.append(E + f"        d{j}[islot] = 0")
                src.append(E + f"    t{j}[islot] = {EMPTY}")
                src.append(E + f"    fl{j}[islot // {levels[j]._ways}] -= 1")
                src.append(E + f"    st{j}.invalidations += 1")
            src.append(E + "if owed:")
            src.append(E + "    wb.append(victim)")
        else:
            b = i + 1
            b_lvl = levels[b]
            b_intel = type(b_lvl.policy) is IntelLikePolicy and b_lvl._ways <= _PLRU_LUT_MAX_WAYS
            src.append(E + f"bslot = x{b}.get(victim)")
            src.append(E + "if bslot is None:")
            src.append(E + "    if vd:")
            src.append(E + "        wb.append(victim)")
            src.append(E + "elif vd:")
            src.append(E + f"    bset = bslot // {b_lvl._ways}")
            if b_intel:
                src.append(E + f"    bw = bslot - bset * {b_lvl._ways}")
                src.append(E + f"    bs = p{b}[bset]")
                src.append(E + f"    bs[0] = (bs[0] & a{b}[bw]) | o{b}[bw]")
            else:
                src.append(E + f"    oa{b}(p{b}[bset], bslot - bset * {b_lvl._ways})")
            src.append(E + f"    d{b}[bslot] = 1")
        if i == 0:
            src.append(E + "return vslot")
    exec(compile("\n".join(src), "<fused-fill>", "exec"), ns)
    return ns["fill_all"]


@dataclass
class HierarchyAccessResult:
    """Outcome of one hierarchy access."""

    #: Name of the level that hit, or ``"memory"``.
    hit_level: str
    #: Load-to-use latency in cycles, excluding device queueing.
    latency: int
    #: Dirty lines pushed out to memory by fills along the way.
    writebacks: List[int] = field(default_factory=list)
    #: True when the request had to go to the memory device.
    memory_access: bool = False


class CacheHierarchy:
    """An inclusive multi-level cache hierarchy.

    ``levels`` are ordered innermost (L1) to outermost (LLC).  The memory
    device itself lives outside this class: the hierarchy reports which
    dirty lines fall out of the last level and the CPU forwards them to
    the device (where write-combining and amplification happen).
    """

    def __init__(self, levels: Sequence[CacheLevel], line_size: int) -> None:
        if not levels:
            raise ConfigurationError("hierarchy requires at least one cache level")
        sizes = [lvl.spec.size_bytes for lvl in levels]
        if sizes != sorted(sizes):
            raise ConfigurationError(
                "inclusive hierarchy requires monotonically growing level sizes; "
                f"got {sizes}"
            )
        for lvl in levels:
            if lvl.line_size != line_size:
                raise ConfigurationError("all levels must share the machine line size")
        self.levels = list(levels)
        self.line_size = line_size
        # Allocation-free fast path: innermost-level hits are by far the
        # most common outcome, need no fills or writebacks, and have a
        # constant latency — so they share one preallocated result.  The
        # shared result is read-only by convention (its writebacks
        # container is an empty tuple, so accidental mutation raises) and
        # only valid until the next access, which every caller satisfies.
        l1 = self.levels[0]
        self._l1_index = l1._index
        self._l1_hit = HierarchyAccessResult(l1.spec.name, l1.spec.hit_latency, (), False)  # type: ignore[arg-type]
        # Fused miss walk (DESIGN.md §15): one generated function for the
        # whole hierarchy, specialised to its level geometry and
        # policies.  All referenced containers are mutated in place and
        # never reassigned, so the generated code stays valid for the
        # hierarchy's life.
        self._level_stats = [lvl.stats for lvl in self.levels]
        self._fill_all = _build_fill_all(self.levels)
        self._l1_mark = (l1._index, l1._dirty, l1._policy_state, l1.policy.on_access, l1._ways)

    @property
    def last_level(self) -> CacheLevel:
        return self.levels[-1]

    def line_of(self, addr: int) -> int:
        return addr // self.line_size

    # -- the main access path ---------------------------------------------

    def access_line(self, line: int, is_write: bool) -> HierarchyAccessResult:
        """Access one line, filling and evicting as needed.

        Latency is the hit latency of the level that hit (memory latency
        is added by the CPU, which owns the device clock).
        """
        slot = self._l1_index.get(line)
        if slot is not None:
            # Innermost hit: bump stats/recency/dirtiness in place and
            # return the shared result — no Eviction, list, or result
            # allocation.  Equivalent to the generic path below: that
            # path nets hits+1 (access +1, bookkeeping re-access +1,
            # explicit -1) and touches the policy twice with the same
            # way, which idempotent policies collapse to one touch.
            l1 = self.levels[0]
            ways = l1._ways
            set_i = slot // ways
            way_i = slot - set_i * ways
            l1.stats.hits += 1
            l1.policy.on_access(l1._policy_state[set_i], way_i)
            if is_write:
                l1._dirty[slot] = 1
                if not l1._idempotent_policy:
                    l1.policy.on_access(l1._policy_state[set_i], way_i)
            return self._l1_hit
        return self._access_line_slow(line, is_write)

    def _access_line_slow(self, line: int, is_write: bool) -> HierarchyAccessResult:
        """The generic walk: inner miss, fills, evictions, writebacks."""
        latency = 0
        hit_at: Optional[int] = None
        for i, lvl in enumerate(self.levels):
            latency += lvl.spec.hit_latency
            if lvl.access(line, is_write):
                hit_at = i
                break
        writebacks: List[int] = []
        if hit_at is None:
            # Miss everywhere: fill every level, outermost first so that
            # inclusion holds even if an inner install evicts.
            for idx in range(len(self.levels) - 1, -1, -1):
                evicted = self.levels[idx].install(line, dirty=False)
                if evicted is not None:
                    writebacks.extend(self._handle_eviction(idx, evicted))
            if is_write:
                self._mark_dirty_innermost(line)
            return HierarchyAccessResult("memory", latency, writebacks, memory_access=True)
        # Fill the levels above the hit (inclusive fills).
        for idx in range(hit_at - 1, -1, -1):
            evicted = self.levels[idx].install(line, dirty=False)
            if evicted is not None:
                writebacks.extend(self._handle_eviction(idx, evicted))
        if is_write:
            self._mark_dirty_innermost(line)
        return HierarchyAccessResult(self.levels[hit_at].spec.name, latency, writebacks)

    def fill_write_miss(self, line: int, writebacks: List[int]) -> None:
        """Fused write-allocate walk for a line resident *nowhere*.

        Semantically identical to ``access_line(line, is_write=True)``
        when every level misses — probe misses, outermost-first fills,
        eviction propagation, innermost dirty marking — but operating
        directly on the flat tag/dirty arrays: no Eviction, result, or
        per-level list is allocated, and dirty lines that reach memory
        are appended to the caller's ``writebacks`` scratch list.  The
        policy call sequence (victim / on_insert / on_access) is the same
        as the generic walk's, so seeded policies draw identical
        randomness.  Callers must have established that no level contains
        ``line``; the fused store loop in :mod:`repro.sim.cpu` is the
        intended user.
        """
        for stats in self._level_stats:
            stats.misses += 1
        slot = self._fill_all(line, writebacks)
        # _mark_dirty_innermost, fused: the line was just installed in L1
        # at ``slot``.
        _, l1_dirty, l1_pstates, l1_on_access, l1_ways = self._l1_mark
        set_i = slot // l1_ways
        l1_on_access(l1_pstates[set_i], slot - set_i * l1_ways)
        l1_dirty[slot] = 1

    def _mark_dirty_innermost(self, line: int) -> None:
        for lvl in self.levels:
            if lvl.contains(line):
                lvl.access(line, is_write=True)
                # Undo double-counted hit statistics: access() above was
                # bookkeeping, not a program access.
                lvl.stats.hits -= 1
                return
        raise SimulationError(f"line {line:#x} vanished during fill")  # pragma: no cover

    def _handle_eviction(self, idx: int, evicted: Eviction) -> List[int]:
        """Propagate an eviction from ``levels[idx]``; returns dirty
        lines that reach memory."""
        if idx == len(self.levels) - 1:
            # LLC eviction: back-invalidate inner levels (inclusion) and
            # collect their dirtiness.
            dirty = evicted.dirty
            for inner in self.levels[:idx]:
                __, inner_dirty = inner.invalidate(evicted.line)
                dirty = dirty or inner_dirty
            return [evicted.line] if dirty else []
        # Inner eviction: the line is still resident below (inclusion);
        # push the dirt one level out.
        below = self.levels[idx + 1]
        if not below.contains(evicted.line):
            # Inclusion was broken by a racing outer eviction during a
            # multi-level fill; treat as memory-bound writeback.
            return [evicted.line] if evicted.dirty else []
        if evicted.dirty:
            below.install(evicted.line, dirty=True)
        return []

    # -- pre-store support -------------------------------------------------

    def clean_line(self, line: int) -> bool:
        """Clean a line at every level; True if a writeback is owed.

        This is ``clwb``: modifications propagate to memory, the cached
        copies stay valid (Section 2: "cleaning the data propagates the
        modifications to memory but does not invalidate the cache").
        """
        owed = False
        for lvl in self.levels:
            owed = lvl.clean(line) or owed
        return owed

    def demote_line(self, line: int, writebacks: Optional[List[int]] = None) -> bool:
        """Demote a line from the innermost level towards the last level.

        Moves dirtiness (and recency priority) down: the line is dropped
        from inner levels and installed dirty in the last level, mirroring
        ``cldemote``.  Returns True if the line was present anywhere.

        Re-installing into the last level can evict a victim; the
        eviction is propagated (back-invalidations included) like any
        fill's, and dirty lines that reach memory are appended to
        ``writebacks`` when a list is given.  Dropping the eviction
        here — as this method used to — left the victim resident in the
        inner levels' indexes while gone from the LLC: exactly the stale
        state the install-path victim invariant exists to catch.
        """
        present = False
        dirty = False
        for lvl in self.levels[:-1]:
            was_present, was_dirty = lvl.invalidate(line)
            present = present or was_present
            dirty = dirty or was_dirty
        last = self.last_level
        if last.contains(line):
            present = True
            if dirty:
                last.access(line, is_write=True)
                last.stats.hits -= 1
        elif present:
            evicted = last.install(line, dirty=dirty)
            if evicted is not None:
                owed = self._handle_eviction(len(self.levels) - 1, evicted)
                if writebacks is not None:
                    writebacks.extend(owed)
        return present

    def invalidate_line(self, line: int) -> bool:
        """Drop a line everywhere; True if any copy was dirty."""
        dirty = False
        for lvl in self.levels:
            __, was_dirty = lvl.invalidate(line)
            dirty = dirty or was_dirty
        return dirty

    def contains(self, line: int) -> bool:
        return any(lvl.contains(line) for lvl in self.levels)

    def is_dirty(self, line: int) -> bool:
        return any(lvl.is_dirty(line) for lvl in self.levels)

    def drain_dirty_lines(self) -> List[int]:
        """Flush: clean every level, returning dirty lines owed to memory.

        Used at end of run so devices see all outstanding writebacks (like
        powering down a machine with ``wbinvd``).  Lines come out in the
        last level's physical walk order — see
        :meth:`CacheLevel.walk_lines` for why sorted order would cheat.

        The walk is columnwise over the flat dirty arrays: with numpy the
        dirty slots of a level are found in one ``nonzero`` over the
        byte column (ascending slot order *is* physical walk order),
        which is what keeps the end-of-run drain cheap on LLC-sized
        levels.
        """
        owed: List[int] = []
        seen = set()
        for lvl in reversed(self.levels):
            stats = lvl.stats
            tags = lvl._tags
            if _np is not None:
                dirty_slots = _np.nonzero(
                    _np.frombuffer(lvl._dirty, dtype=_np.uint8)
                )[0].tolist()
            else:  # pragma: no cover - numpy is in the standard image
                dirty_slots = [i for i, d in enumerate(lvl._dirty) if d]
            for slot in dirty_slots:
                line = tags[slot]
                lvl._dirty[slot] = 0
                stats.cleans += 1
                if line not in seen:
                    seen.add(line)
                    owed.append(line)
        # Dirty lines only present in inner levels (not in the walk above
        # because inclusion was momentarily broken) are covered by the
        # columnwise walk too; this second pass mirrors the historical
        # per-level sweep for levels whose insertion order differs.
        for lvl in self.levels[:-1]:
            for line in list(lvl.resident_lines()):
                if lvl.clean(line) and line not in seen:
                    seen.add(line)
                    owed.append(line)
        return owed
