"""Cache replacement policies.

The paper's Problem #1 hinges on the fact that modern caches do *not*
evict in strict LRU order: "Intel CPUs rely on a pseudo-LRU and 'random'
evictions to reduce the cost of maintaining LRU.  Similarly, ARM CPUs
implement a mix of LRU, FIFO, and random evictions" (Section 4.1).

Each policy manages per-set metadata of its own shape; the cache gives it
way indices on insert/access and asks for a victim way on conflict.  All
randomised policies draw from a seeded :class:`random.Random` owned by the
policy so that simulations are reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, List

from repro.errors import ConfigurationError

__all__ = [
    "ReplacementPolicy",
    "TrueLRU",
    "FIFO",
    "RandomReplacement",
    "TreePLRU",
    "IntelLikePolicy",
    "ArmLikePolicy",
    "make_policy",
]


class ReplacementPolicy(ABC):
    """Per-set victim selection strategy.

    The cache calls :meth:`new_set` once per set, then feeds accesses and
    insertions through :meth:`on_access` / :meth:`on_insert` and asks
    :meth:`victim` for the way index to evict when the set is full.
    """

    name: str = "abstract"

    #: Contract: calling :meth:`on_access` repeatedly with the same way
    #: (and no interleaved insert/victim) leaves the metadata in the same
    #: state as calling it once, and draws no randomness.  All built-in
    #: policies satisfy this (recency updates are absorbing; RNG is only
    #: consumed by :meth:`victim`), which lets the simulator's fast paths
    #: collapse the reference interpreter's repeated same-way touches
    #: into one.  A subclass that counts accesses or randomises recency
    #: must set this to False; the fast paths then replay every touch.
    idempotent_on_access: bool = True

    @abstractmethod
    def new_set(self, ways: int) -> Any:
        """Create the metadata object for one ``ways``-wide set."""

    @abstractmethod
    def on_insert(self, state: Any, way: int) -> None:
        """A line was installed into ``way``."""

    @abstractmethod
    def on_access(self, state: Any, way: int) -> None:
        """The line in ``way`` was hit by a load or store."""

    @abstractmethod
    def victim(self, state: Any) -> int:
        """The way index to evict from a full set."""

    def evict_insert(self, state: Any) -> int:
        """Pick a victim and register the replacement insert, fused.

        Exactly equivalent to ``victim(state)`` followed by
        ``on_insert(state, way)`` — including randomness draw order — in
        one call.  The simulator's fused miss walk uses this to halve the
        per-eviction policy call count; built-in policies override it
        with fully inlined implementations.
        """
        way = self.victim(state)
        self.on_insert(state, way)
        return way

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class TrueLRU(ReplacementPolicy):
    """Strict least-recently-used: the textbook baseline.

    Under true LRU, an application that writes arrays one after the other
    sees them evicted in the order they were written — the ideal the
    paper's Figure 2 contrasts real hardware against.
    """

    name = "lru"

    def new_set(self, ways: int) -> List[int]:
        # Recency stack: index 0 = LRU, last = MRU.
        return list(range(ways))

    def on_insert(self, state: List[int], way: int) -> None:
        self.on_access(state, way)

    def on_access(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    def victim(self, state: List[int]) -> int:
        return state[0]

    def evict_insert(self, state: List[int]) -> int:
        way = state.pop(0)  # victim = LRU; insert makes it MRU
        state.append(way)
        return way


class FIFO(ReplacementPolicy):
    """First-in first-out: eviction order ignores hits entirely."""

    name = "fifo"

    def new_set(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_insert(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    def on_access(self, state: List[int], way: int) -> None:
        # Hits do not change FIFO order.
        pass

    def victim(self, state: List[int]) -> int:
        return state[0]

    def evict_insert(self, state: List[int]) -> int:
        way = state.pop(0)  # victim = oldest; insert re-queues it last
        state.append(way)
        return way


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim selection."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def new_set(self, ways: int) -> int:
        return ways

    def on_insert(self, state: int, way: int) -> None:
        pass

    def on_access(self, state: int, way: int) -> None:
        pass

    def victim(self, state: int) -> int:
        return self._rng.randrange(state)

    def evict_insert(self, state: int) -> int:
        return self._rng.randrange(state)  # on_insert is a no-op


#: Memoised tree-PLRU lookup tables keyed by way count.  A PLRU *touch*
#: writes fixed bits along a path determined only by the touched way —
#: never by the current state — so it collapses to
#: ``state & and_mask[way] | or_mask[way]`` on an integer-encoded tree
#: (bit ``i`` of the state is tree node ``i``).  The victim walk *is*
#: state-dependent, so it is tabulated over all ``2**(ways-1)`` states.
#: Table-driven and walk-based forms compute the same function, so mixing
#: them (e.g. a LUT-capable level next to a legacy one) cannot diverge.
_PLRU_LUTS: dict = {}
#: Beyond 16 ways the victim table (``2**(ways-1)`` entries) stops being
#: worth materialising; callers fall back to the walking form.
_PLRU_LUT_MAX_WAYS = 16


def _plru_lut(ways: int):
    """``(and_masks, or_masks, victim_table)`` for a ``ways``-way tree."""
    lut = _PLRU_LUTS.get(ways)
    if lut is not None:
        return lut
    nodes = ways - 1
    full = (1 << nodes) - 1
    and_masks: List[int] = []
    or_masks: List[int] = []
    for way in range(ways):
        clear = 0
        setv = 0
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            bit = 1 << node
            clear |= bit
            if way < mid:
                setv |= bit
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        and_masks.append(full & ~clear)
        or_masks.append(setv)
    victim_table: List[int] = []
    for state in range(1 << nodes):
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if (state >> node) & 1:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        victim_table.append(lo)
    lut = (and_masks, or_masks, victim_table)
    _PLRU_LUTS[ways] = lut
    return lut


class TreePLRU(ReplacementPolicy):
    """Tree pseudo-LRU: the classic 1-bit-per-node approximation.

    For a ``w``-way set (``w`` a power of two) a binary tree of ``w - 1``
    bits points away from recently used ways.  Pseudo-LRU approximates LRU
    well but diverges under exactly the interleaved access patterns the
    paper cares about, producing out-of-order evictions.
    """

    name = "tree-plru"

    def new_set(self, ways: int) -> List[int]:
        if ways & (ways - 1):
            raise ConfigurationError(f"TreePLRU requires power-of-two ways, got {ways}")
        # bits[0] is the root; children of node i are 2i+1 and 2i+2.
        return [0] * (ways - 1)

    def _touch(self, bits: List[int], way: int) -> None:
        ways = len(bits) + 1
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1  # point away: right subtree is "older"
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        del node  # fully descended

    def on_insert(self, state: List[int], way: int) -> None:
        self._touch(state, way)

    def on_access(self, state: List[int], way: int) -> None:
        self._touch(state, way)

    def victim(self, state: List[int]) -> int:
        ways = len(state) + 1
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if state[node] == 1:
                node = 2 * node + 2  # bit points right = right is older
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def evict_insert(self, state: List[int]) -> int:
        # victim walk and touch, fused (both loops inlined: this runs
        # once per conflict miss in the simulator's fused paths).
        ways = len(state) + 1
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if state[node] == 1:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        way = lo
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                state[node] = 1
                node = 2 * node + 1
                hi = mid
            else:
                state[node] = 0
                node = 2 * node + 2
                lo = mid
        return way


class IntelLikePolicy(ReplacementPolicy):
    """Tree-PLRU with a random-victim component, as on Intel cores.

    With probability ``random_prob`` the victim is chosen uniformly at
    random instead of by the PLRU tree, modelling the adaptive/random
    behaviour documented for Ivy Bridge and later (paper ref. [45]).
    """

    name = "intel-like"

    def __init__(self, random_prob: float = 0.25, seed: int = 0) -> None:
        if not 0.0 <= random_prob <= 1.0:
            raise ConfigurationError(f"random_prob must be in [0, 1], got {random_prob}")
        self.random_prob = random_prob
        self._plru = TreePLRU()
        self._rng = random.Random(seed)
        # Bound RNG draw: victim runs once per conflict miss in the
        # simulator's fused loops, so shave the attribute chains.  The
        # uniform way pick is ``int(random() * ways)`` — one C-level draw
        # instead of randrange's Python-level rejection loop; for the
        # power-of-two way counts the tree supports the float has bits to
        # spare, so the pick stays uniform.
        self._rand = self._rng.random

    def new_set(self, ways: int) -> Any:
        # Validate via TreePLRU (power-of-two ways), then prefer the
        # integer-encoded LUT state: the tree becomes one int, a touch
        # becomes two table lookups and a mask op, and the victim walk a
        # single indexed read.  Identical victims and identical RNG draw
        # order to the walking form — only the representation changes.
        bits = self._plru.new_set(ways)
        if ways > _PLRU_LUT_MAX_WAYS:
            return (ways, bits)
        and_masks, or_masks, victim_table = _plru_lut(ways)
        return [0, and_masks, or_masks, victim_table, ways]

    def on_access(self, state: Any, way: int) -> None:
        # This is the hottest policy call in the simulator: every hit
        # and every fill.
        if type(state) is list:
            state[0] = (state[0] & state[1][way]) | state[2][way]
            return
        # Legacy wide-set state: TreePLRU._touch on state[1], inlined.
        bits = state[1]
        node = 0
        lo, hi = 0, len(bits) + 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid

    on_insert = on_access

    def victim(self, state: Any) -> int:
        if type(state) is list:
            if self._rand() < self.random_prob:
                return int(self._rand() * state[4])
            return state[3][state[0]]
        ways, bits = state
        if self._rand() < self.random_prob:
            return int(self._rand() * ways)
        # TreePLRU.victim on bits, inlined.
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node] == 1:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def evict_insert(self, state: Any) -> int:
        if type(state) is list:
            s = state[0]
            if self._rand() < self.random_prob:
                way = int(self._rand() * state[4])
            else:
                way = state[3][s]
            state[0] = (s & state[1][way]) | state[2][way]
            return way
        ways, bits = state
        if self._rand() < self.random_prob:
            way = int(self._rand() * ways)
        else:
            node = 0
            lo, hi = 0, ways
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if bits[node] == 1:
                    node = 2 * node + 2
                    lo = mid
                else:
                    node = 2 * node + 1
                    hi = mid
            way = lo
        node = 0
        lo, hi = 0, ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        return way


class ArmLikePolicy(ReplacementPolicy):
    """A mix of LRU, FIFO and random eviction, as on ARM cores.

    Per eviction one of the three sub-policies is drawn according to the
    configured weights (paper ref. [3] documents such mixed behaviour for
    ARM cache controllers).
    """

    name = "arm-like"

    def __init__(
        self,
        lru_weight: float = 0.5,
        fifo_weight: float = 0.25,
        random_weight: float = 0.25,
        seed: int = 0,
    ) -> None:
        total = lru_weight + fifo_weight + random_weight
        if total <= 0 or min(lru_weight, fifo_weight, random_weight) < 0:
            raise ConfigurationError("ArmLikePolicy weights must be non-negative and sum > 0")
        self._weights = (lru_weight / total, fifo_weight / total, random_weight / total)
        self._lru = TrueLRU()
        self._fifo = FIFO()
        self._rng = random.Random(seed)
        # Bound delegates + precomputed thresholds for the per-miss
        # victim call; identical draw order through self._rng.
        self._rand = self._rng.random
        self._randrange = self._rng.randrange
        self._lru_cut = self._weights[0]
        self._fifo_cut = self._weights[0] + self._weights[1]

    def new_set(self, ways: int) -> Any:
        return (ways, self._lru.new_set(ways), self._fifo.new_set(ways))

    def on_insert(self, state: Any, way: int) -> None:
        lru_state = state[1]
        lru_state.remove(way)
        lru_state.append(way)
        fifo_state = state[2]
        fifo_state.remove(way)
        fifo_state.append(way)

    def on_access(self, state: Any, way: int) -> None:
        # LRU recency moves on a hit; FIFO order does not.
        lru_state = state[1]
        lru_state.remove(way)
        lru_state.append(way)

    def victim(self, state: Any) -> int:
        draw = self._rand()
        if draw < self._lru_cut:
            return state[1][0]
        if draw < self._fifo_cut:
            return state[2][0]
        return self._randrange(state[0])

    def evict_insert(self, state: Any) -> int:
        draw = self._rand()
        if draw < self._lru_cut:
            way = state[1][0]
        elif draw < self._fifo_cut:
            way = state[2][0]
        else:
            way = self._randrange(state[0])
        # on_insert inlined: LRU and FIFO orders both move the way last.
        lru_state = state[1]
        lru_state.remove(way)
        lru_state.append(way)
        fifo_state = state[2]
        fifo_state.remove(way)
        fifo_state.append(way)
        return way


_POLICIES = {
    "lru": TrueLRU,
    "fifo": FIFO,
    "random": RandomReplacement,
    "tree-plru": TreePLRU,
    "intel-like": IntelLikePolicy,
    "arm-like": ArmLikePolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by name (seeded where applicable).

    >>> make_policy("lru").name
    'lru'
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls in (RandomReplacement, IntelLikePolicy, ArmLikePolicy):
        return cls(seed=seed)  # type: ignore[call-arg]
    return cls()
