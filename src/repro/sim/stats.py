"""Aggregated run statistics.

One :class:`RunResult` is produced per simulation; experiments compare
results across patch configurations (baseline vs. clean vs. demote vs.
skip) to produce the paper's speedup / write-amplification numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import Diagnostic

__all__ = ["CoreStats", "RunResult"]


@dataclass
class CoreStats:
    """Per-core cycle and instruction accounting."""

    core_id: int = 0
    cycles: float = 0.0
    instructions: int = 0
    reads: int = 0
    writes: int = 0
    nontemporal_writes: int = 0
    fences: int = 0
    atomics: int = 0
    prestores: int = 0
    #: Cycles stalled waiting for fences/atomics to observe visibility.
    fence_stall_cycles: float = 0.0
    #: Cycles stalled on device write backpressure.
    backpressure_stall_cycles: float = 0.0
    #: Cycles stalled on store-buffer overflow.
    store_buffer_stall_cycles: float = 0.0
    #: Demand-read cycles spent waiting on the memory device.
    memory_read_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    machine_name: str
    cycles: float
    #: ``cycles`` plus the time to drain all dirty data to the device at
    #: the end of the run.  Short write-heavy runs park dirty lines in
    #: the cache; steady-state throughput comparisons should use this.
    cycles_with_drain: float
    instructions: int
    cores: List[CoreStats]
    #: Per-cache-level stat snapshots keyed by level name.
    cache_hits: Dict[str, int]
    cache_misses: Dict[str, int]
    cache_evictions: Dict[str, int]
    cache_dirty_evictions: Dict[str, int]
    #: Device counters (the simulated ipmctl view).
    device_writebacks: int
    device_bytes_received: int
    device_media_bytes_written: int
    device_reads: int
    device_bytes_read: int
    #: Units of application work completed (set by the workload; used for
    #: throughput).
    work_items: int = 0
    #: Free-form extra metrics workloads want to expose.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Sanitizer findings for this run (empty unless a sanitizer was
    #: attached via the ``sanitize=`` hooks; see :mod:`repro.sanitize`).
    diagnostics: List["Diagnostic"] = field(default_factory=list)

    @property
    def write_amplification(self) -> float:
        """Media bytes written per cache byte evicted (>= ~1.0)."""
        if self.device_bytes_received == 0:
            return 1.0
        return self.device_media_bytes_written / self.device_bytes_received

    @property
    def total_fence_stall_cycles(self) -> float:
        return sum(c.fence_stall_cycles for c in self.cores)

    @property
    def total_backpressure_stall_cycles(self) -> float:
        return sum(c.backpressure_stall_cycles for c in self.cores)

    def throughput(self, work_items: Optional[int] = None, with_drain: bool = True) -> float:
        """Completed work items per kilocycle (higher is better).

        ``with_drain`` (default) charges the end-of-run writeback drain,
        approximating steady state for short write-heavy runs.
        """
        items = self.work_items if work_items is None else work_items
        cycles = self.cycles_with_drain if with_drain else self.cycles
        if cycles <= 0:
            return 0.0
        return 1000.0 * items / cycles

    def drained_speedup_over(self, baseline: "RunResult") -> float:
        """Like :meth:`speedup_over` but drain-inclusive."""
        if self.cycles_with_drain <= 0:
            return float("inf")
        return baseline.cycles_with_drain / self.cycles_with_drain

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / our cycles (>1 means we are faster)."""
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        """A compact human-readable digest."""
        return (
            f"{self.machine_name}: {self.cycles:,.0f} cycles, "
            f"{self.instructions:,} instrs, WA={self.write_amplification:.2f}x, "
            f"fence stalls={self.total_fence_stall_cycles:,.0f}cyc, "
            f"backpressure={self.total_backpressure_stall_cycles:,.0f}cyc"
        )
