"""Aggregated run statistics.

One :class:`RunResult` is produced per simulation; experiments compare
results across patch configurations (baseline vs. clean vs. demote vs.
skip) to produce the paper's speedup / write-amplification numbers.

Derived-ratio convention (DESIGN.md §9): a ratio whose denominator is
zero — IPC of a zero-cycle run, hit rate with no accesses, throughput of
a zero-cycle run, write amplification with no bytes received — returns
``float("nan")``, never a fake sentinel.  NaN propagates loudly through
arithmetic and comparisons instead of silently skewing means; callers
that want a sentinel must opt in explicitly.

:class:`RunResult` round-trips through JSON (:meth:`RunResult.to_json` /
:meth:`RunResult.from_json`) so experiment results and sampled timelines
can be archived as artifacts instead of dying with the process.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import Diagnostic
from repro.obs.timeline import Timeline

__all__ = ["CoreStats", "RunResult"]


@dataclass
class CoreStats:
    """Per-core cycle and instruction accounting."""

    core_id: int = 0
    cycles: float = 0.0
    instructions: int = 0
    reads: int = 0
    writes: int = 0
    nontemporal_writes: int = 0
    fences: int = 0
    atomics: int = 0
    prestores: int = 0
    #: Cycles stalled waiting for fences/atomics to observe visibility.
    fence_stall_cycles: float = 0.0
    #: Cycles stalled on device write backpressure.
    backpressure_stall_cycles: float = 0.0
    #: Cycles stalled on store-buffer overflow.
    store_buffer_stall_cycles: float = 0.0
    #: Demand-read cycles spent waiting on the memory device.
    memory_read_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle; NaN for a zero-cycle core (no data)."""
        if self.cycles <= 0:
            return float("nan")
        return self.instructions / self.cycles


@dataclass
class RunResult:
    """Everything measured during one simulated run."""

    machine_name: str
    cycles: float
    #: ``cycles`` plus the time to drain all dirty data to the device at
    #: the end of the run.  Short write-heavy runs park dirty lines in
    #: the cache; steady-state throughput comparisons should use this.
    cycles_with_drain: float
    instructions: int
    cores: List[CoreStats]
    #: Per-cache-level stat snapshots keyed by level name.
    cache_hits: Dict[str, int]
    cache_misses: Dict[str, int]
    cache_evictions: Dict[str, int]
    cache_dirty_evictions: Dict[str, int]
    #: Device counters (the simulated ipmctl view).
    device_writebacks: int
    device_bytes_received: int
    device_media_bytes_written: int
    device_reads: int
    device_bytes_read: int
    #: Units of application work completed (set by the workload; used for
    #: throughput).
    work_items: int = 0
    #: Free-form extra metrics workloads want to expose.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Sanitizer findings for this run (empty unless a sanitizer was
    #: attached via the ``sanitize=`` hooks; see :mod:`repro.sanitize`).
    diagnostics: List["Diagnostic"] = field(default_factory=list)
    #: Sampled time-series telemetry (None unless an obs collector was
    #: attached via the ``obs=`` hooks; see :mod:`repro.obs`).
    timeline: Optional[Timeline] = None

    @property
    def write_amplification(self) -> float:
        """Media bytes written per cache byte evicted (>= ~1.0).

        NaN when the run evicted nothing (zero-denominator convention).
        """
        if self.device_bytes_received == 0:
            return float("nan")
        return self.device_media_bytes_written / self.device_bytes_received

    @property
    def total_fence_stall_cycles(self) -> float:
        return sum(c.fence_stall_cycles for c in self.cores)

    @property
    def total_backpressure_stall_cycles(self) -> float:
        return sum(c.backpressure_stall_cycles for c in self.cores)

    def throughput(self, work_items: Optional[int] = None, with_drain: bool = True) -> float:
        """Completed work items per kilocycle (higher is better).

        ``with_drain`` (default) charges the end-of-run writeback drain,
        approximating steady state for short write-heavy runs.  NaN for
        a zero-cycle run (rate of nothing over no time — see the module
        docstring's derived-ratio convention).
        """
        items = self.work_items if work_items is None else work_items
        cycles = self.cycles_with_drain if with_drain else self.cycles
        if cycles <= 0:
            return float("nan")
        return 1000.0 * items / cycles

    def drained_speedup_over(self, baseline: "RunResult") -> float:
        """Like :meth:`speedup_over` but drain-inclusive."""
        if self.cycles_with_drain <= 0:
            return float("inf")
        return baseline.cycles_with_drain / self.cycles_with_drain

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / our cycles (>1 means we are faster)."""
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        """A compact human-readable digest."""
        return (
            f"{self.machine_name}: {self.cycles:,.0f} cycles, "
            f"{self.instructions:,} instrs, WA={self.write_amplification:.2f}x, "
            f"fence stalls={self.total_fence_stall_cycles:,.0f}cyc, "
            f"backpressure={self.total_backpressure_stall_cycles:,.0f}cyc"
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data view of the whole result (JSON-serialisable)."""
        return {
            "machine_name": self.machine_name,
            "cycles": self.cycles,
            "cycles_with_drain": self.cycles_with_drain,
            "instructions": self.instructions,
            "cores": [asdict(c) for c in self.cores],
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "cache_evictions": dict(self.cache_evictions),
            "cache_dirty_evictions": dict(self.cache_dirty_evictions),
            "device_writebacks": self.device_writebacks,
            "device_bytes_received": self.device_bytes_received,
            "device_media_bytes_written": self.device_media_bytes_written,
            "device_reads": self.device_reads,
            "device_bytes_read": self.device_bytes_read,
            "work_items": self.work_items,
            "extra": dict(self.extra),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "timeline": self.timeline.to_dict() if self.timeline is not None else None,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RunResult":
        data = dict(d)
        data["cores"] = [CoreStats(**c) for c in data.get("cores", ())]  # type: ignore[union-attr]
        data["diagnostics"] = [
            Diagnostic.from_dict(diag) for diag in data.get("diagnostics", ())  # type: ignore[union-attr]
        ]
        timeline = data.get("timeline")
        data["timeline"] = Timeline.from_dict(timeline) if timeline is not None else None  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
