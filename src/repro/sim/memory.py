"""Memory device models: DRAM, Optane PMEM, CXL SSD, FPGA-attached DRAM.

Devices differ in three paper-relevant ways (Table 1 and Section 3):

* **Internal write granularity** — the unit the medium actually writes.
  A 64 B cache-line writeback landing on a 256 B-granularity device forces
  a 256 B read-modify-write unless it can be merged with neighbouring
  writebacks: that is write amplification.
* **Latency** — cycles for a round trip; on Machine B the coherence
  directory also lives on the device, so *visibility* operations pay this
  latency too.
* **Bandwidth** — bytes per cycle the medium sustains; amplified writes
  consume it, which is what turns WA into lost throughput once enough
  threads contend (Figure 3).

The write combiner models the device-side buffering (e.g. Optane's
XPBuffer): a bounded set of open ``granularity``-sized entries.  Writebacks
that land in an open entry merge for free; closing an entry costs one
internal write of the full granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "DeviceSpec",
    "DeviceStats",
    "WriteCombiner",
    "MemoryDevice",
    "dram_spec",
    "optane_pmem_spec",
    "cxl_ssd_spec",
    "fpga_spec",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a memory device."""

    name: str
    #: Round-trip read latency in CPU cycles.
    read_latency: int
    #: Additional latency of a write reaching the medium, in cycles.
    write_latency: int
    #: Internal read/write unit of the medium, in bytes (Table 1).
    internal_granularity: int
    #: Sustained internal write bandwidth in bytes per CPU cycle.
    bandwidth_bytes_per_cycle: float
    #: Media read bandwidth; defaults to the write bandwidth.  Optane
    #: reads are ~3x faster than writes, but both occupy the same media,
    #: which is how write amplification slows reads down too.
    read_bandwidth_bytes_per_cycle: Optional[float] = None
    #: Number of open write-combining entries on the device.
    combiner_entries: int = 64
    #: True when the coherence directory is resident on this device
    #: (Section 4.2: Intel stores it in DRAM/PMEM, Enzian in the FPGA).
    hosts_directory: bool = True

    def validate(self) -> None:
        if self.read_latency < 0 or self.write_latency < 0:
            raise ConfigurationError(f"{self.name}: latencies must be non-negative")
        if self.internal_granularity <= 0 or self.internal_granularity & (self.internal_granularity - 1):
            raise ConfigurationError(
                f"{self.name}: internal granularity must be a positive power of two, "
                f"got {self.internal_granularity}"
            )
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.read_bandwidth_bytes_per_cycle is not None and self.read_bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError(f"{self.name}: read bandwidth must be positive")
        if self.combiner_entries <= 0:
            raise ConfigurationError(f"{self.name}: combiner needs at least one entry")


@dataclass
class DeviceStats:
    """Counters matching what ``ipmctl`` exposes on real PMEM.

    ``bytes_received`` counts cache-line bytes arriving from the CPU;
    ``media_bytes_written`` counts what the medium actually wrote.  Their
    ratio is the write amplification the paper measures with ipmctl.
    """

    writebacks_received: int = 0
    bytes_received: int = 0
    media_writes: int = 0
    media_bytes_written: int = 0
    reads: int = 0
    bytes_read: int = 0
    combiner_merges: int = 0

    def write_amplification(self) -> float:
        """Media bytes written per cache byte evicted.

        NaN when nothing has been received yet (DESIGN.md §9: a ratio
        with a zero denominator has no data, not a neutral value).
        """
        if self.bytes_received == 0:
            return float("nan")
        return self.media_bytes_written / self.bytes_received


class WriteCombiner:
    """Bounded set of open internal-granularity write entries.

    Tracks, per open entry, which bytes have arrived.  An entry closes
    (costing one full-granularity media write) when it is evicted to make
    room or at :meth:`flush`.  Sequential writeback streams keep hitting
    the same open entry and merge perfectly; scrambled streams thrash.
    """

    def __init__(
        self,
        granularity: int,
        entries: int,
        on_close: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.granularity = granularity
        self.capacity = entries
        #: block number -> bytes merged so far.  A plain dict: insertion
        #: order is the LRU order, refreshed by delete-and-reinsert.
        self._open: dict = {}
        self.merges = 0
        self.closes = 0
        #: Optional hook fired with the block number of every entry that
        #: closes (eviction or flush).  The fault-injection tracker uses
        #: it to learn exactly when pending bytes become media-durable;
        #: timing and statistics are unaffected when unset.
        self.on_close = on_close

    def _close_entry(self, block: int) -> None:
        self.closes += 1
        if self.on_close is not None:
            self.on_close(block)

    def block_of(self, addr: int) -> int:
        return addr // self.granularity

    def add(self, addr: int, size: int) -> int:
        """Absorb a writeback; returns the number of entries closed."""
        gran = self.granularity
        if size > 0 and (addr + size - 1) // gran == addr // gran:
            # Single-block arrival — every line-sized writeback, since
            # lines divide the granularity.  Same bookkeeping as the
            # general walk below, without the chunking loop.
            block = addr // gran
            open_ = self._open
            if block in open_:
                merged = open_[block] + size
                del open_[block]  # re-insert to refresh LRU position
                open_[block] = gran if merged > gran else merged
                self.merges += 1
                return 0
            closed = 0
            if len(open_) >= self.capacity:
                evicted = next(iter(open_))
                del open_[evicted]
                self.closes += 1
                if self.on_close is not None:
                    self.on_close(evicted)
                closed = 1
            open_[block] = size
            return closed
        closed = 0
        remaining = size
        offset = addr
        while remaining > 0:
            block = self.block_of(offset)
            block_end = (block + 1) * self.granularity
            chunk = min(remaining, block_end - offset)
            if block in self._open:
                # Re-merges of the same line arrive repeatedly (hot-line
                # writebacks); the entry can never hold more than the
                # block's granularity worth of distinct bytes, so clamp
                # instead of accumulating unboundedly.
                merged = min(self.granularity, self._open[block] + chunk)
                del self._open[block]
                self._open[block] = merged
                self.merges += 1
            else:
                if len(self._open) >= self.capacity:
                    evicted = next(iter(self._open))
                    del self._open[evicted]
                    self._close_entry(evicted)
                    closed += 1
                self._open[block] = chunk
            offset += chunk
            remaining -= chunk
        return closed

    def flush(self) -> int:
        """Close all open entries; returns how many closed."""
        closed = len(self._open)
        for block in list(self._open):
            self._close_entry(block)
        self._open.clear()
        return closed

    def open_blocks(self) -> List[int]:
        """Block numbers currently open, oldest first."""
        return list(self._open)

    @property
    def open_entries(self) -> int:
        return len(self._open)


class MemoryDevice:
    """A memory device with a shared bandwidth queue and write combining.

    Time is passed in by callers (the CPU clocks); the device keeps a
    single ``next_free`` horizon modelling its serial internal bandwidth.
    ``backlog(now)`` tells callers how many cycles of work are queued —
    the CPU uses it to apply store backpressure.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        spec.validate()
        self.spec = spec
        self.stats = DeviceStats()
        self.combiner = WriteCombiner(spec.internal_granularity, spec.combiner_entries)
        # Hot-path copies of the (frozen) spec fields: read/write_back
        # run once per cold miss, and the attribute chains dominate
        # otherwise (DESIGN.md §15).
        self._bw = spec.bandwidth_bytes_per_cycle
        self._read_bw = spec.read_bandwidth_bytes_per_cycle or spec.bandwidth_bytes_per_cycle
        self._gran = spec.internal_granularity
        self._read_latency = spec.read_latency
        self._write_latency = spec.write_latency
        self._combiner_entries = spec.combiner_entries
        #: The *bus* queue: every writeback's payload crosses the link to
        #: the device, merged or not — this is what makes cleaning a hot
        #: line expensive (Listing 3) even though the media dedupes it.
        self._bus_next_free = 0.0
        #: The *media* queue: internal granularity-sized writes.  Under
        #: write amplification this queue carries WA× the bus bytes and
        #: becomes the bottleneck.
        self._media_next_free = 0.0
        #: Read-return horizon: line-fill payloads share the link with
        #: writeback traffic (they wait behind ``_bus_next_free``) and
        #: serialise among themselves, but — like a real memory
        #: controller that slots prioritised reads into gaps — they do
        #: not push the writers' horizon back.
        self._read_return_next_free = 0.0
        #: Recently read media blocks: consecutive line fills within one
        #: internal-granularity block cost one media read, not four (the
        #: device buffers the block it just read).  Plain dict in
        #: insertion = LRU order, refreshed by delete-and-reinsert.
        self._read_buffer: dict = {}

    # -- time/bandwidth helpers -------------------------------------------

    def backlog(self, now: float) -> float:
        """Cycles of queued work not yet started at ``now``.

        The bus and the media pipeline in parallel; the backlog seen by a
        writer is whichever stage is further behind.
        """
        return max(0.0, self._bus_next_free - now, self._media_next_free - now)

    def _consume_bus(self, now: float, nbytes: int, read_return: bool = False) -> float:
        """Occupy the shared link for ``nbytes``; returns the finish time.

        Writeback payloads advance ``_bus_next_free``.  Read returns
        (``read_return=True``) wait behind it — a writeback backlog
        delays line fills — but only advance their own horizon, so a
        read-heavy phase never inflates store backpressure.
        """
        if read_return:
            start = max(now, self._bus_next_free, self._read_return_next_free)
            self._read_return_next_free = start + nbytes / self.spec.bandwidth_bytes_per_cycle
            return self._read_return_next_free
        start = max(now, self._bus_next_free)
        self._bus_next_free = start + nbytes / self.spec.bandwidth_bytes_per_cycle
        return self._bus_next_free

    def _consume_media(self, now: float, nbytes: int) -> float:
        start = max(now, self._media_next_free)
        self._media_next_free = start + nbytes / self.spec.bandwidth_bytes_per_cycle
        return self._media_next_free

    def _media_occupancy_bytes(self, now: float, nbytes: int) -> int:
        """Fault-injection seam: the media work one access costs at ``now``.

        The base device returns ``nbytes`` unchanged (the stream fast
        path inlines exactly this identity arithmetic); the
        fault-tracking device multiplies it inside degraded-bandwidth
        phases, which is safe because installing a fault device always
        forces streams to unroll onto the out-of-line methods
        (``FaultInjector.accepts_streams``)."""
        return nbytes

    # -- CPU-visible operations ---------------------------------------------

    def read(self, addr: int, size: int, now: float) -> float:
        """A demand read (line fill); returns its completion time.

        Reads occupy the same media as writes (an internal-granularity
        read-modify-read), so a large writeback backlog delays them —
        this is how write amplification slows down GET-heavy phases on
        real PMEM.  The CPU-side backpressure limit bounds how far behind
        the media can be, so reads never starve.

        The fill payload then crosses the shared link, so a writeback
        backlog on the *bus* delays reads too — even when the media
        itself is idle (e.g. a merge-friendly writeback stream that
        closes no combiner entries).
        """
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += size
        gran = self._gran
        media_bytes = 0
        first = addr // gran
        last = (addr + (size if size > 1 else 1) - 1) // gran
        # Line fills rarely straddle an internal-granularity block; walk
        # the single-block case without building a range object.
        blocks = (first,) if first == last else range(first, last + 1)
        read_buffer = self._read_buffer
        for block in blocks:
            if block in read_buffer:
                del read_buffer[block]  # re-insert to refresh LRU position
                read_buffer[block] = True
                continue
            media_bytes += gran
            read_buffer[block] = True
            if len(read_buffer) > self._combiner_entries:
                del read_buffer[next(iter(read_buffer))]
        if media_bytes:
            media_bytes = self._media_occupancy_bytes(now, media_bytes)
        occupancy = media_bytes / self._read_bw
        media = self._media_next_free
        start = now if now >= media else media
        media_done = start + occupancy
        self._media_next_free = media_done
        # The line fill is delivered over the same link writeback payloads
        # arrive on; it cannot start before the media produced the data.
        # (Inline of _consume_bus(media_done, size, read_return=True).)
        start = media_done
        bus = self._bus_next_free
        if bus > start:
            start = bus
        rr = self._read_return_next_free
        if rr > start:
            start = rr
        bus_done = start + size / self._bw
        self._read_return_next_free = bus_done
        return bus_done + self._read_latency

    def write_back(self, addr: int, size: int, now: float) -> float:
        """A cache-line writeback arriving from the CPU.

        The payload lands in the combiner; any entries the arrival closes
        become media writes of the full internal granularity, queued on
        the bandwidth horizon.  Returns the time the writeback is durable
        on the medium (== enqueue time when it merely merged).
        """
        stats = self.stats
        stats.writebacks_received += 1
        stats.bytes_received += size
        bus = self._bus_next_free
        start = now if now >= bus else bus
        bus_done = start + size / self._bw
        self._bus_next_free = bus_done
        closed = self.combiner.add(addr, size)
        if not closed:
            return bus_done
        gran = self._gran
        stats.media_writes += closed
        stats.media_bytes_written += gran * closed
        # A closed entry's media write cannot start before the bus has
        # delivered the payload that triggered the close; each write
        # serialises on the media horizon, so the last one dominates.
        media = self._media_next_free
        for _ in range(closed):
            start = bus_done if bus_done >= media else media
            media = start + self._media_occupancy_bytes(start, gran) / self._bw
        self._media_next_free = media
        return media + self._write_latency

    def flush(self, now: float) -> float:
        """Close every open combiner entry (end of run / ``wbinvd``)."""
        closed = self.combiner.flush()
        done = float(now)
        for _ in range(closed):
            self.stats.media_writes += 1
            self.stats.media_bytes_written += self.spec.internal_granularity
            done = max(
                done,
                self._consume_media(
                    now, self._media_occupancy_bytes(now, self.spec.internal_granularity)
                ),
            )
        return done

    def quiesce_time(self, now: float) -> float:
        """When all queued bus/media work will have finished."""
        return max(now, self._bus_next_free, self._media_next_free)

    @property
    def directory_latency(self) -> int:
        """Latency of one coherence-directory update.

        Zero when the directory is not device-resident (then its cost is
        folded into the cache latencies).
        """
        return self.spec.read_latency if self.spec.hosts_directory else 0

    def write_amplification(self) -> float:
        return self.stats.write_amplification()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryDevice {self.spec.name} gran={self.spec.internal_granularity}B>"


# -- presets (Table 1 and Section 3) ----------------------------------------


def dram_spec(read_latency: int = 90, bandwidth: float = 12.0) -> DeviceSpec:
    """Directly attached DDR DRAM: 64 B granularity, no amplification."""
    return DeviceSpec(
        name="DRAM",
        read_latency=read_latency,
        write_latency=30,
        internal_granularity=64,
        bandwidth_bytes_per_cycle=bandwidth,
        combiner_entries=64,
        hosts_directory=False,
    )


def optane_pmem_spec(
    read_latency: int = 170,
    bandwidth: float = 1.1,
    combiner_entries: int = 24,
) -> DeviceSpec:
    """Intel Optane persistent memory (Machine A's cached medium).

    256 B internal granularity (Table 1); a small on-DIMM combining
    buffer; write bandwidth well below DRAM.  The default bandwidth
    (~2.2 GB/s/DIMM-group at 2.1 GHz) is scaled to our simulator units;
    only ratios matter for the reproduced claims.
    """
    return DeviceSpec(
        name="Optane-PMEM",
        read_latency=read_latency,
        write_latency=60,
        internal_granularity=256,
        bandwidth_bytes_per_cycle=bandwidth,
        read_bandwidth_bytes_per_cycle=3.0 * bandwidth,
        combiner_entries=combiner_entries,
        hosts_directory=True,
    )


def cxl_ssd_spec(granularity: int = 512, read_latency: int = 400, bandwidth: float = 0.8) -> DeviceSpec:
    """Byte-addressable CXL-attached SSD: 256/512 B internal granularity."""
    if granularity not in (256, 512):
        raise ConfigurationError("CXL SSDs use 256B or 512B internal granularity (Table 1)")
    return DeviceSpec(
        name=f"CXL-SSD-{granularity}B",
        read_latency=read_latency,
        write_latency=200,
        internal_granularity=granularity,
        bandwidth_bytes_per_cycle=bandwidth,
        combiner_entries=32,
        hosts_directory=True,
    )


def fpga_spec(read_latency: int, bandwidth: float, line_size: int = 128) -> DeviceSpec:
    """Enzian-style cache-coherent FPGA memory (Machine B).

    Granularity equals the CPU line size, so no write amplification is
    possible — matching Section 6.2.3's note that Machine B gains nothing
    from sequentiality.  The coherence directory is FPGA-resident, so
    visibility operations pay the FPGA latency (Section 4.2).
    """
    return DeviceSpec(
        name=f"FPGA-mem({read_latency}cyc)",
        read_latency=read_latency,
        write_latency=read_latency // 2,
        internal_granularity=line_size,
        bandwidth_bytes_per_cycle=bandwidth,
        # The FPGA fronts ordinary DRAM: reads are cheap and highly
        # parallel compared to the coherent-write path.
        read_bandwidth_bytes_per_cycle=4.0 * bandwidth,
        combiner_entries=64,
        hosts_directory=True,
    )
