"""Simulator benchmark suite: events/sec per machine preset, both paths.

Measures the event interpreter's throughput on sequential access
microbenchmarks — cold (install/fill dominated) and warm
(interpretation dominated) — under the **reference** vocabulary (one
READ/WRITE event per access) and the **batched** stream vocabulary the
machine expands inline (DESIGN.md §11).  Every measured pair is also an
equivalence check: the two paths must produce bit-identical
``RunResult`` JSON, and the process exits non-zero if they ever differ.

Run as::

    python -m repro.sim.bench                 # full suite -> BENCH_sim.json
    python -m repro.sim.bench --quick         # CI smoke sizes
    python -m repro.sim.bench --profile       # cProfile + span breakdown

The headline number is the warm sequential-write benchmark on
machine-A: a cache-resident buffer written over and over, where the
reference path's per-event generator round trips and allocations are
pure interpreter overhead.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import random
import sys
import time
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.sim.event import Event
from repro.sim.machine import (
    MachineSpec,
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.sim.stats import RunResult
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["PRESETS", "BENCHMARKS", "run_bench", "main"]

#: Preset name -> zero-argument MachineSpec factory.
PRESETS: Dict[str, Callable[[], MachineSpec]] = {
    "machine-A": machine_a,
    "machine-A-dram": machine_dram,
    "machine-A-cxl": machine_a_cxl,
    "machine-B-fast": machine_b_fast,
    "machine-B-slow": machine_b_slow,
}

#: Headline pair reported up front (and checked by CI).
HEADLINE = ("machine-A", "seq_write_warm")


# -- benchmark bodies -------------------------------------------------------


def _seq_write_warm(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """Repeated stores over a cache-resident buffer (the headline).

    After the first pass every line is L1-resident, so the reference
    path's time is almost entirely interpreter overhead — exactly what
    the batched vocabulary removes.
    """
    buf = t.alloc(buf_bytes, label="bench_warm")
    with t.function("bench_seq_write", file="bench.py", line=1):
        for _ in range(passes):
            yield from t.write_block(buf.base, buf_bytes)


def _seq_write_cold(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """One pass of stores over a buffer far larger than the caches."""
    buf = t.alloc(buf_bytes, label="bench_cold")
    with t.function("bench_seq_write_cold", file="bench.py", line=2):
        yield from t.write_block(buf.base, buf_bytes)


def _seq_read_warm(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """Repeated loads over a cache-resident buffer."""
    buf = t.alloc(buf_bytes, label="bench_read")
    with t.function("bench_seq_read", file="bench.py", line=3):
        for _ in range(passes):
            yield from t.read_block(buf.base, buf_bytes)


#: Page size used to scramble the cold benchmarks: one stream event per
#: page keeps the event sequence identical in both vocabularies while the
#: page order defeats the set-sequential locality the ``seq_*`` cold
#: benchmarks enjoy — this is what exercises the fused miss path's hashed
#: LLC indexing and combiner thrash.
_PAGE = 4096


def _shuffled_pages(buf_bytes: int, seed: int) -> list:
    offsets = list(range(0, buf_bytes, _PAGE))
    random.Random(seed).shuffle(offsets)
    return offsets


def _rand_write_cold(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """Page-shuffled stores over a buffer far larger than the caches."""
    buf = t.alloc(buf_bytes, label="bench_rand_w")
    pages = _shuffled_pages(buf_bytes, seed=0xC01D)
    with t.function("bench_rand_write_cold", file="bench.py", line=4):
        for _ in range(passes):
            for off in pages:
                yield from t.write_block(buf.base + off, min(_PAGE, buf_bytes - off))


def _rand_read_cold(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """Page-shuffled loads over a buffer far larger than the caches."""
    buf = t.alloc(buf_bytes, label="bench_rand_r")
    pages = _shuffled_pages(buf_bytes, seed=0xC01D)
    with t.function("bench_rand_read_cold", file="bench.py", line=5):
        for _ in range(passes):
            for off in pages:
                yield from t.read_block(buf.base + off, min(_PAGE, buf_bytes - off))


def _mixed_cold(t: ThreadCtx, buf_bytes: int, passes: int) -> Iterator[Event]:
    """Alternating page-shuffled stores and loads (both fused loops)."""
    buf = t.alloc(buf_bytes, label="bench_mixed")
    pages = _shuffled_pages(buf_bytes, seed=0x313D)
    with t.function("bench_mixed_cold", file="bench.py", line=6):
        for _ in range(passes):
            for i, off in enumerate(pages):
                size = min(_PAGE, buf_bytes - off)
                if i & 1:
                    yield from t.read_block(buf.base + off, size)
                else:
                    yield from t.write_block(buf.base + off, size)


#: name -> (body, full (buf_bytes, passes), quick (buf_bytes, passes)).
BENCHMARKS: Dict[str, Tuple[Callable[..., Iterator[Event]], Tuple[int, int], Tuple[int, int]]] = {
    "seq_write_warm": (_seq_write_warm, (16 * 1024, 400), (16 * 1024, 60)),
    "seq_write_cold": (_seq_write_cold, (2 * 1024 * 1024, 1), (256 * 1024, 1)),
    "seq_read_warm": (_seq_read_warm, (16 * 1024, 400), (16 * 1024, 60)),
    "rand_write_cold": (_rand_write_cold, (1024 * 1024, 1), (128 * 1024, 1)),
    "rand_read_cold": (_rand_read_cold, (1024 * 1024, 1), (128 * 1024, 1)),
    "mixed_cold": (_mixed_cold, (1024 * 1024, 1), (128 * 1024, 1)),
}


# -- measurement ------------------------------------------------------------


def _run_once(
    spec: MachineSpec, body: Callable[..., Iterator[Event]], sizes: Tuple[int, int], streams: bool
) -> Tuple[RunResult, float]:
    buf_bytes, passes = sizes
    program = Program(spec, streams=streams)
    program.spawn(body, buf_bytes, passes)
    start = time.perf_counter()
    result = program.run()
    return result, time.perf_counter() - start


def _measure(
    preset: Callable[[], MachineSpec],
    body: Callable[..., Iterator[Event]],
    sizes: Tuple[int, int],
    repeats: int,
) -> dict:
    """Time both vocabularies (best of ``repeats``) and check equivalence."""
    entry: dict = {}
    jsons = {}
    for label, streams in (("reference", False), ("fast", True)):
        best: Optional[float] = None
        result: Optional[RunResult] = None
        for _ in range(repeats):
            result, wall = _run_once(preset(), body, sizes, streams)
            if best is None or wall < best:
                best = wall
        assert result is not None and best is not None
        jsons[label] = result.to_json()
        entry[label] = {
            "seconds": best,
            "instructions": result.instructions,
            # NaN, not inf, on an unmeasurable (zero-time) run: a ratio
            # with a zero denominator carries no data (DESIGN.md §9), and
            # inf would silently win every "faster than" comparison
            # downstream.
            "events_per_sec": result.instructions / best if best > 0 else float("nan"),
        }
    ref_eps = entry["reference"]["events_per_sec"]
    entry["speedup"] = (
        entry["fast"]["events_per_sec"] / ref_eps if ref_eps > 0 else float("nan")
    )
    entry["identical"] = jsons["reference"] == jsons["fast"]
    return entry


def run_bench(
    quick: bool = False, repeats: int = 1, presets: Optional[Tuple[str, ...]] = None
) -> dict:
    """Run the matrix; returns the BENCH_sim.json document.

    ``presets`` restricts the machine presets measured (CI's
    ``bench-check`` job runs only the two fastest); None runs them all.
    The headline stays machine-A's warm sequential write when that
    preset is included, otherwise the first selected preset's.
    """
    selected = dict(PRESETS)
    if presets is not None:
        unknown = sorted(set(presets) - set(PRESETS))
        if unknown:
            raise ValueError(f"unknown presets {unknown}; choose from {sorted(PRESETS)}")
        selected = {name: PRESETS[name] for name in PRESETS if name in presets}
    doc: dict = {
        "schema": "repro.bench_sim/v1",
        "quick": quick,
        "repeats": repeats,
        "presets": {},
    }
    ok = True
    for pname, preset in selected.items():
        doc["presets"][pname] = {}
        for bname, (body, full_sizes, quick_sizes) in BENCHMARKS.items():
            sizes = quick_sizes if quick else full_sizes
            entry = _measure(preset, body, sizes, repeats)
            doc["presets"][pname][bname] = entry
            ok = ok and entry["identical"]
            print(
                f"{pname:16s} {bname:16s} "
                f"ref {entry['reference']['events_per_sec']:>12,.0f} ev/s   "
                f"fast {entry['fast']['events_per_sec']:>12,.0f} ev/s   "
                f"x{entry['speedup']:.2f}  "
                f"{'identical' if entry['identical'] else 'RESULTS DIFFER'}"
            )
    hp, hb = HEADLINE
    if hp not in doc["presets"]:
        hp = next(iter(doc["presets"]))
    doc["headline"] = {
        "preset": hp,
        "benchmark": hb,
        "speedup": doc["presets"][hp][hb]["speedup"],
    }
    doc["all_identical"] = ok
    return doc


# -- profiling --------------------------------------------------------------


def _profile_headline(quick: bool) -> None:
    """cProfile breakdown of the headline benchmark, both paths."""
    hp, hb = HEADLINE
    body, full_sizes, quick_sizes = BENCHMARKS[hb]
    sizes = quick_sizes if quick else full_sizes
    for label, streams in (("reference", False), ("fast", True)):
        prof = cProfile.Profile()
        prof.enable()
        _run_once(PRESETS[hp](), body, sizes, streams)
        prof.disable()
        out = io.StringIO()
        pstats.Stats(prof, stream=out).sort_stats("cumulative").print_stats(14)
        print(f"\n=== cProfile: {hp} {hb} [{label}] ===")
        print(out.getvalue())
    # Span breakdown of the reference path: wrap the simulator's hot
    # methods the same way ObsCollector(profile=True) does.
    from repro.obs.log import SpanProfiler

    program = Program(PRESETS[hp](), streams=False)
    program.spawn(body, *sizes)
    profiler = SpanProfiler()
    machine = program.machine
    profiler.wrap(machine, "step", "sim.dispatch")
    profiler.wrap(machine.hierarchy, "access_line", "sim.cache_lookup")
    profiler.wrap(machine.device, "write_back", "sim.device_writeback")
    profiler.wrap(machine.device, "read", "sim.device_read")
    with profiler.span("sim.run"):
        program.run()
    profiler.unwrap_all()
    print(f"=== SpanProfiler: {hp} {hb} [reference] ===")
    print(profiler.report())


# -- CLI --------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.bench",
        description="Benchmark the event interpreter (reference vs. batched stream path).",
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--repeats", type=int, default=1, help="best-of-N timing (default 1)")
    parser.add_argument("--out", default="BENCH_sim.json", help="output JSON path")
    parser.add_argument(
        "--preset",
        action="append",
        choices=sorted(PRESETS),
        default=None,
        help="measure only this preset (repeatable; default: all presets)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile/SpanProfiler breakdown of the headline benchmark and exit",
    )
    args = parser.parse_args(argv)
    if args.profile:
        _profile_headline(args.quick)
        return 0
    doc = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        presets=None if args.preset is None else tuple(args.preset),
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    head = doc["headline"]
    print(
        f"\nheadline: {head['preset']} {head['benchmark']} "
        f"x{head['speedup']:.2f} -> {args.out}"
    )
    if not doc["all_identical"]:
        print("ERROR: fast path diverged from the reference results", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
