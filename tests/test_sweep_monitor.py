"""The sweep event bus and fleet monitor: determinism, aggregates, isolation."""

import json
import math

import pytest

from repro.core.prestore import PrestoreMode
from repro.runner import Cell, ResultCache, SweepEvent, SweepMonitor, execute_cells
from repro.runner.monitor import outcome_to_dict, replay_outcomes
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing1

MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN)


def _listing1_factory():
    return Listing1(element_size=512, num_elements=64, iterations=120)


def _cells(seed=7):
    return [
        Cell(make_workload=_listing1_factory, spec=machine_a(), mode=m, seed=seed)
        for m in MODES
    ]


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _terminal(monitor, index, worker="pid1", wall_s=0.5, status="ok"):
    kind = {"ok": "finish", "cached": "cache_hit"}.get(status, status)
    monitor.emit(SweepEvent(kind=kind, index=index, total=monitor.total, run_id=f"r{index}",
                            worker=worker, status=status, wall_s=wall_s, attempts=1))


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_monitor_changes_no_result_byte(self, workers):
        # The acceptance invariant: attaching a monitor (or --watch) must
        # not change RunResult JSON at any worker count.
        reference = [o.result_json for o in execute_cells(_cells(), workers=1)]
        monitor = SweepMonitor()
        observed = [
            o.result_json
            for o in execute_cells(_cells(), workers=workers, events=monitor)
        ]
        assert observed == reference
        assert monitor.counts["ok"] == len(reference)

    def test_monitor_changes_no_result_byte_reference_path(self, monkeypatch):
        # Same invariant under the per-access reference vocabulary.
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        reference = [o.result_json for o in execute_cells(_cells(), workers=1)]
        monitored = [
            o.result_json
            for o in execute_cells(_cells(), workers=1, events=SweepMonitor())
        ]
        assert monitored == reference

    def test_raising_subscriber_is_detached_not_fatal(self):
        # The isolation rule: telemetry must never fail the science.
        calls = []

        def bad_subscriber(event):
            calls.append(event.kind)
            raise RuntimeError("observer bug")

        outcomes = execute_cells(_cells(), workers=1, events=bad_subscriber)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert calls == ["sweep_begin"]  # detached after the first raise


class TestAggregation:
    def test_live_sweep_counts_and_rates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        monitor = SweepMonitor()
        execute_cells(_cells(), workers=1, cache=cache, events=monitor)
        execute_cells(_cells(), workers=1, cache=cache, events=monitor)  # warm
        assert monitor.sweep_seq == 2
        assert monitor.counts["cached"] == 2
        assert monitor.cache_hit_rate == 1.0
        assert monitor.inflight == 0
        # The warm sweep simulated nothing: per-sweep reset means no sim
        # counters and no worker gauges leak in from the cold sweep.
        assert all(math.isnan(r) for r in monitor.sim_event_rates().values())
        assert monitor.workers == {}
        hist = monitor.registry.get("sweep.cell_wall_s")
        assert hist is None or hist.count == 0

    def test_cold_sweep_reports_sim_event_rates(self):
        monitor = SweepMonitor()
        execute_cells(_cells(), workers=1, events=monitor)
        rates = monitor.sim_event_rates()
        assert rates["writes"] > 0 and rates["reads"] > 0
        snap = monitor.snapshot()
        assert snap["sim_events_per_sec_writes"] > 0
        assert snap["sim_fast_path"] == 1.0
        assert monitor.registry.get("sweep.cell_wall_s").count == 2
        (worker,) = monitor.workers
        assert monitor.worker_utilization()[worker] > 0

    def test_inflight_and_retry_accounting(self):
        clock = _FakeClock()
        monitor = SweepMonitor(clock=clock)
        monitor.emit(SweepEvent(kind="sweep_begin", total=3))
        monitor.emit(SweepEvent(kind="submit", index=0, run_id="r0"))
        monitor.emit(SweepEvent(kind="submit", index=1, run_id="r1"))
        assert monitor.inflight == 2
        # A retry takes the failed attempt out of flight; its resubmission
        # re-emits submit, so the count round-trips to where it was.
        monitor.emit(SweepEvent(kind="retry", index=0, run_id="r0", attempts=1))
        assert monitor.inflight == 1 and monitor.retries == 1
        monitor.emit(SweepEvent(kind="submit", index=0, run_id="r0"))
        assert monitor.inflight == 2
        clock.now += 2.0
        _terminal(monitor, 0, wall_s=1.5)
        _terminal(monitor, 1, wall_s=0.5)
        assert monitor.inflight == 0
        assert monitor.cells_per_sec == 1.0  # 2 cells / 2 fake seconds
        assert monitor.eta_s == 1.0  # 1 remaining at 1 cell/s
        monitor.emit(SweepEvent(kind="sweep_end"))
        assert monitor.elapsed_s == 2.0  # frozen at sweep end

    def test_early_ratios_are_nan(self):
        monitor = SweepMonitor(clock=_FakeClock())
        monitor.emit(SweepEvent(kind="sweep_begin", total=4))
        assert math.isnan(monitor.cells_per_sec)
        assert math.isnan(monitor.cache_hit_rate)
        assert math.isnan(monitor.eta_s)
        # ...and they export as null, never a nan literal (§10).
        snap = monitor.snapshot()
        assert snap["sweep_cells_per_sec"] is None
        assert snap["sweep_cache_hit_rate"] is None

    def test_instant_sweep_renders_dashes_not_inf(self):
        # Regression: a sweep that is 100% cache hits completes with
        # elapsed ~ 0 while done > 0.  cells/s and ETA have no data —
        # they must come out NaN (never inf) and the --watch dashboard
        # must render them as dashes without raising.
        clock = _FakeClock()  # never advanced: elapsed stays 0.0
        monitor = SweepMonitor(clock=clock)
        monitor.emit(SweepEvent(kind="sweep_begin", total=3))
        _terminal(monitor, 0, wall_s=0.0, status="cached")
        _terminal(monitor, 1, wall_s=0.0, status="cached")
        assert monitor.done == 2 and monitor.elapsed_s == 0.0
        assert math.isnan(monitor.cells_per_sec)
        assert math.isnan(monitor.eta_s)  # 1 remaining, no throughput data
        assert monitor.cache_hit_rate == 1.0
        text = monitor.render_dashboard()
        assert "inf" not in text.replace("inflight", "")
        assert "cells/s -" in text
        assert "ETA -" in text
        # ...and the machine-readable exports stay parseable (§10).
        snap = monitor.snapshot()
        assert snap["sweep_cells_per_sec"] is None
        json.dumps(snap, allow_nan=False)

    def test_dashboard_mentions_fleet_numbers(self):
        clock = _FakeClock()
        monitor = SweepMonitor(clock=clock)
        execute_cells(_cells(), workers=1, events=monitor)
        text = monitor.render_dashboard()
        assert "2/2" in text
        assert "cache hit-rate" in text
        assert "workers (cells, busy, util):" in text
        assert "sim events (fast path):" in text
        assert "ETA" in text


class TestProgressFile:
    def test_jsonl_stream_recovers_the_dashboard(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with SweepMonitor(progress_path=path) as monitor:
            execute_cells(_cells(), workers=1, events=monitor)
            snapshot = monitor.snapshot()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [line["event"] for line in lines]
        assert kinds[0] == "sweep_begin" and kinds[-1] == "summary"
        assert kinds.count("finish") == 2 and kinds.count("submit") == 2
        # The summary line carries the full exported registry: every
        # dashboard number is recoverable from the file after the fact.
        assert lines[-1]["metrics"] == snapshot
        assert lines[-1]["metrics"]["sweep_cells_ok"] == 2.0

    def test_consecutive_sweeps_share_one_file(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with SweepMonitor(progress_path=path) as monitor:
            execute_cells(_cells(), workers=1, events=monitor)
            execute_cells(_cells(), workers=1, events=monitor)
        sweeps = {json.loads(line)["sweep"] for line in path.read_text().splitlines()}
        assert sweeps == {1, 2}


class TestReplay:
    def test_replay_matches_live_aggregates(self):
        live = SweepMonitor()
        outcomes = execute_cells(_cells(), workers=1, events=live)
        replayed = replay_outcomes(outcomes)
        assert replayed.counts == live.counts
        assert replayed.workers == live.workers
        assert replayed.sim_counts == live.sim_counts
        assert replayed.attempts == live.attempts

    def test_outcome_to_dict_is_json_safe(self):
        outcome = execute_cells(_cells(), workers=1)[0]
        doc = outcome_to_dict(outcome)
        json.dumps(doc, allow_nan=False)  # must not raise
        assert doc["status"] == "ok"
        assert doc["cycles"] > 0
        assert doc["attempts"] == 1
