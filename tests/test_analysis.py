"""Unit tests for the analysis utilities (ipmctl, perf, sweep, tables)."""

import math

import pytest

from repro.analysis.ipmctl import MediaCounters, read_media_counters
from repro.analysis.perf import profile_store_time
from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.core.prestore import PatchConfig, PrestoreMode
from repro.workloads.microbench import Listing1
from repro.workloads.phoronix import ReadMostlyWorkload


class TestIpmctl:
    def test_counters_from_run(self, tiny_machine_a):
        w = Listing1(element_size=1024, num_elements=128, iterations=200)
        result = w.run(tiny_machine_a, PatchConfig.baseline())
        counters = read_media_counters(result.run)
        assert counters.bytes_received == result.run.device_bytes_received
        assert counters.write_amplification == pytest.approx(
            result.run.write_amplification
        )
        assert "WriteAmplification" in counters.render()

    def test_idle_device_reports_nan(self):
        # Zero-denominator convention (DESIGN.md §9): no bytes, no data.
        assert math.isnan(MediaCounters(0, 0, 0).write_amplification)


class TestPerf:
    def test_write_heavy_vs_read_heavy(self, tiny_machine_a):
        writer = Listing1(element_size=1024, num_elements=256, iterations=300)
        reader = ReadMostlyWorkload("pytorch", "stream", scale=200)
        wp = profile_store_time(writer, tiny_machine_a, sampling_period=53)
        rp = profile_store_time(reader, tiny_machine_a, sampling_period=53)
        assert wp.write_intensive
        assert not rp.write_intensive
        assert wp.store_share > rp.store_share
        assert "listing1_loop" in dict(wp.top_functions)
        assert "store" in wp.render() or "%" in wp.render()


class TestSweep:
    def test_sweep_covers_grid(self, tiny_machine_a):
        points = sweep(
            lambda size: Listing1(element_size=size, num_elements=64, iterations=100),
            tiny_machine_a,
            values=(256, 1024),
            modes=(PrestoreMode.NONE, PrestoreMode.CLEAN),
        )
        assert len(points) == 4
        combos = {(p.parameter, p.mode) for p in points}
        assert (256, PrestoreMode.CLEAN) in combos
        assert all(p.cycles > 0 for p in points)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["short", 1.25], ["longer-name", 100]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer-name" in lines[2]
        assert "1.25" in text
