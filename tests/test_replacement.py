"""Unit and property tests for replacement policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.replacement import (
    ArmLikePolicy,
    FIFO,
    IntelLikePolicy,
    RandomReplacement,
    TreePLRU,
    TrueLRU,
    make_policy,
)

ALL_POLICY_NAMES = ["lru", "fifo", "random", "tree-plru", "intel-like", "arm-like"]


class TestTrueLRU:
    def test_victim_is_least_recent(self):
        lru = TrueLRU()
        state = lru.new_set(4)
        for way in range(4):
            lru.on_insert(state, way)
        lru.on_access(state, 0)  # 0 becomes MRU
        assert lru.victim(state) == 1

    def test_repeated_access_keeps_way_safe(self):
        lru = TrueLRU()
        state = lru.new_set(2)
        lru.on_insert(state, 0)
        lru.on_insert(state, 1)
        for _ in range(5):
            lru.on_access(state, 0)
        assert lru.victim(state) == 1


class TestFIFO:
    def test_hits_do_not_change_order(self):
        fifo = FIFO()
        state = fifo.new_set(3)
        for way in range(3):
            fifo.on_insert(state, way)
        for _ in range(10):
            fifo.on_access(state, 0)
        assert fifo.victim(state) == 0


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ConfigurationError):
            TreePLRU().new_set(6)

    def test_victim_avoids_most_recent(self):
        plru = TreePLRU()
        state = plru.new_set(4)
        for way in range(4):
            plru.on_insert(state, way)
        plru.on_access(state, 2)
        assert plru.victim(state) != 2

    def test_tracks_lru_for_sequential_fill(self):
        plru = TreePLRU()
        state = plru.new_set(8)
        for way in range(8):
            plru.on_insert(state, way)
        # After touching ways 4..7, the victim must come from 0..3.
        for way in (4, 5, 6, 7):
            plru.on_access(state, way)
        assert plru.victim(state) < 4


class TestMixedPolicies:
    def test_intel_like_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            IntelLikePolicy(random_prob=1.5)

    def test_arm_like_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            ArmLikePolicy(lru_weight=-1.0)

    def test_intel_like_deterministic_with_seed(self):
        def victims(seed):
            policy = IntelLikePolicy(seed=seed)
            state = policy.new_set(8)
            out = []
            for way in range(8):
                policy.on_insert(state, way)
            for _ in range(32):
                victim = policy.victim(state)
                out.append(victim)
                policy.on_insert(state, victim)
            return out

        assert victims(3) == victims(3)

    def test_intel_like_scrambles_eviction_order(self):
        """The Figure 2 premise: not strict LRU order."""
        policy = IntelLikePolicy(random_prob=0.25, seed=1)
        state = policy.new_set(8)
        for way in range(8):
            policy.on_insert(state, way)
        order = []
        for _ in range(8):
            victim = policy.victim(state)
            order.append(victim)
            policy.on_insert(state, victim)
        assert order != sorted(order)


class TestFactory:
    @pytest.mark.parametrize("name", ALL_POLICY_NAMES)
    def test_make_policy(self, name):
        assert make_policy(name, seed=1).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("clock")


@given(
    name=st.sampled_from(ALL_POLICY_NAMES),
    ways_exp=st.integers(min_value=1, max_value=4),
    accesses=st.lists(st.integers(min_value=0, max_value=15), max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_policy_victims_always_valid(name, ways_exp, accesses):
    """Property: any policy under any access pattern names a valid way."""
    ways = 2 ** ways_exp
    policy = make_policy(name, seed=11)
    state = policy.new_set(ways)
    for way in range(ways):
        policy.on_insert(state, way)
    for access in accesses:
        policy.on_access(state, access % ways)
        victim = policy.victim(state)
        assert 0 <= victim < ways
        policy.on_insert(state, victim)
