"""Race-detector tests: happens-before, visibility, locksets, relaxed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import Mailbox
from repro.sim.machine import machine_a, machine_b_fast
from repro.workloads.memapi import Program


def _run_shared(spec, *body_factories, size=32 * 64):
    """Allocate one shared region up front, spawn each factory's body on
    it, and return the sanitizer diagnostics."""
    program = Program(spec, sanitize=True)
    region = program.allocator.alloc(size, label="shared")
    for factory in body_factories:
        program.spawn(factory(region))
    return program.run().diagnostics


def _race_rules(diagnostics):
    return [d.rule for d in diagnostics if d.rule.startswith("race.")]


class TestOrderedStreamsAreClean:
    @settings(max_examples=20, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 31), min_size=1, max_size=8),
        pad=st.integers(0, 500),
    )
    def test_fence_and_mailbox_ordered_handoff_has_no_races(self, lines, pad):
        """Write → fence → post → wait → read is racy for no input."""
        box = Mailbox()

        def producer(region):
            def body(t):
                if pad:
                    yield t.compute(pad)
                for idx in lines:
                    yield t.write(region.addr(idx * 64), 8)
                yield t.fence()
                yield t.post(box, "ready")

            return body

        def consumer(region):
            def body(t):
                yield t.wait(box, "ready")
                for idx in lines:
                    yield t.read(region.addr(idx * 64), 8)

            return body

        diagnostics = _run_shared(machine_b_fast(), producer, consumer)
        assert _race_rules(diagnostics) == []

    def test_single_thread_is_never_racy(self):
        def solo(region):
            def body(t):
                for i in range(4):
                    yield t.write(region.addr(i * 64), 8)
                    yield t.read(region.addr(i * 64), 8)

            return body

        assert _race_rules(_run_shared(machine_b_fast(), solo)) == []


class TestSeededRacesAreCaught:
    @settings(max_examples=20, deadline=None)
    @given(
        writer_pad=st.integers(0, 2000),
        reader_pad=st.integers(0, 2000),
    )
    def test_unordered_write_read_pair_always_caught(self, writer_pad, reader_pad):
        """No matter how the two sides are skewed in time, an unsynchronised
        write/read pair on one line is reported."""

        def writer(region):
            def body(t):
                if writer_pad:
                    yield t.compute(writer_pad)
                yield t.write(region.base, 8)

            return body

        def reader(region):
            def body(t):
                if reader_pad:
                    yield t.compute(reader_pad)
                yield t.read(region.base, 8)

            return body

        diagnostics = _run_shared(machine_a(), writer, reader)
        rules = _race_rules(diagnostics)
        assert rules, "unsynchronised pair must be reported"
        assert set(rules) <= {"race.write-read", "race.read-write"}

    def test_unordered_write_write_pair_caught(self):
        def writer(region):
            def body(t):
                yield t.write(region.base, 8)

            return body

        diagnostics = _run_shared(machine_a(), writer, writer)
        assert "race.write-write" in _race_rules(diagnostics)


class TestVisibilityRaces:
    @staticmethod
    def _factories(fence_before_post):
        box = Mailbox()

        def writer(region):
            def body(t):
                yield t.write(region.base, 8)
                if fence_before_post:
                    yield t.fence()
                # Without the fence the store can still be parked in this
                # core's store buffer when the consumer reads (weak model).
                yield t.post(box, "ready")

            return body

        def reader(region):
            def body(t):
                yield t.wait(box, "ready")
                yield t.read(region.base, 8)

            return body

        return writer, reader

    def test_machine_b_catches_unfenced_publish(self):
        writer, reader = self._factories(fence_before_post=False)
        diagnostics = _run_shared(machine_b_fast(), writer, reader)
        visibility = [d for d in diagnostics if d.rule == "race.visibility"]
        assert visibility, "weak model must flag the unfenced publish"
        diag = visibility[0]
        assert diag.severity == "error"
        # The report points at the reader plus the parked store's site.
        assert diag.site is not None and diag.related is not None

    def test_machine_a_tso_is_clean(self):
        writer, reader = self._factories(fence_before_post=False)
        diagnostics = _run_shared(machine_a(), writer, reader)
        assert [d for d in diagnostics if d.rule == "race.visibility"] == []

    def test_fence_before_post_fixes_it(self):
        writer, reader = self._factories(fence_before_post=True)
        assert _race_rules(_run_shared(machine_b_fast(), writer, reader)) == []


class TestSuppression:
    def test_lock_protected_sections_are_not_races(self):
        """Paired atomics on a lock word form an Eraser-style lockset; the
        writes they protect must not be reported even though the scheduler
        interleaves the two critical sections freely."""

        def client(region):
            def body(t):
                lock = region.base
                for _ in range(3):
                    yield t.atomic(lock, 8)  # acquire
                    yield t.read(region.addr(64), 8)
                    yield t.write(region.addr(64), 8)
                    yield t.atomic(lock, 8)  # release

            return body

        diagnostics = _run_shared(machine_a(), client, client)
        assert _race_rules(diagnostics) == []

    def test_relaxed_reads_are_not_races(self):
        """``relaxed=True`` marks by-design unsynchronised reads (optimistic
        protocols); they suppress both HB and visibility reports."""

        def writer(region):
            def body(t):
                yield t.write(region.base, 8)

            return body

        def reader(region):
            def body(t):
                yield t.compute(50)
                yield t.read(region.base, 8, relaxed=True)

            return body

        assert _race_rules(_run_shared(machine_b_fast(), writer, reader)) == []
