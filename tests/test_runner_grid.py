"""Grid expansion and resumable execution via the outcome journal."""

import functools
import json

from repro.core.prestore import PrestoreMode
from repro.runner import Grid, cache_key, load_journal, run_grid
from repro.sim.machine import machine_a, machine_b_fast
from repro.workloads.microbench import Listing1

MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN)


def _spy_factory():
    _spy_factory.calls += 1
    return Listing1(element_size=512, num_elements=32, iterations=40)


_spy_factory.calls = 0

_tiny = functools.partial(Listing1, element_size=512, num_elements=32, iterations=40)
_other = functools.partial(Listing1, element_size=512, num_elements=48, iterations=40)


def _always_raises():
    raise RuntimeError("kaboom")


def _grid(seeds=(1, 2)):
    return Grid(factories=(_tiny,), machines=(machine_a(),), modes=MODES, seeds=seeds)


class TestExpansion:
    def test_len_is_the_axis_product(self):
        grid = Grid(
            factories=(_tiny, _other),
            machines=(machine_a(), machine_b_fast()),
            modes=MODES,
            seeds=(1, 2, 3),
        )
        assert len(grid) == 2 * 2 * 2 * 3
        assert len(grid.cells()) == len(grid)

    def test_row_major_order_seeds_fastest(self):
        grid = Grid(factories=(_tiny, _other), machines=(machine_a(),), modes=MODES, seeds=(1, 2))
        cells = grid.cells()
        # Seeds vary fastest, then modes, then factories.
        assert [c.seed for c in cells[:2]] == [1, 2]
        assert cells[0].mode == cells[1].mode == PrestoreMode.NONE
        assert cells[2].mode == PrestoreMode.CLEAN
        assert cells[0].make_workload is _tiny and cells[4].make_workload is _other

    def test_expansion_is_stable(self):
        assert [cache_key(c) for c in _grid().cells()] == [cache_key(c) for c in _grid().cells()]

    def test_grid_iterates_cells(self):
        assert [c.seed for c in _grid(seeds=(5,))] == [5, 5]

    def test_axes_are_frozen_tuples(self):
        grid = Grid(factories=[_tiny], machines=[machine_a()], modes=list(MODES), seeds=range(2))
        assert grid.seeds == (0, 1)
        assert isinstance(grid.factories, tuple)


class TestResume:
    def test_fresh_and_resumed_runs_are_bit_identical(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        grid = _grid()
        fresh = run_grid(grid, journal=journal, workers=1)
        assert all(o.status == "ok" for o in fresh)
        resumed = run_grid(grid, journal=journal, workers=1)
        assert [o.result_json for o in resumed] == [o.result_json for o in fresh]
        assert all(o.worker == "journal" and o.cached for o in resumed)
        assert all(o.attempts == 0 for o in resumed)

    def test_limit_stops_early_and_resume_finishes(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        grid = _grid(seeds=(1, 2, 3))  # 6 cells
        partial = run_grid(grid, journal=journal, limit=2, workers=1)
        assert len(partial) == 2
        assert len(load_journal(journal)) == 2
        final = run_grid(grid, journal=journal, workers=1)
        assert len(final) == len(grid)
        assert sum(1 for o in final if o.worker == "journal") == 2
        # Merged outcomes come back in grid order, byte-identical to a
        # never-interrupted run.
        reference = run_grid(grid, journal=None, workers=1)
        assert [o.result_json for o in final] == [o.result_json for o in reference]

    def test_resume_skips_the_workload_factory_entirely(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        grid = Grid(factories=(_spy_factory,), machines=(machine_a(),), modes=MODES, seeds=(9,))
        _spy_factory.calls = 0
        run_grid(grid, journal=journal, workers=1)
        calls_after_fresh = _spy_factory.calls
        assert calls_after_fresh == len(grid)
        run_grid(grid, journal=journal, workers=1)
        assert _spy_factory.calls == calls_after_fresh  # nothing re-ran

    def test_no_resume_reruns_everything(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        grid = _grid(seeds=(4,))
        run_grid(grid, journal=journal, workers=1)
        rerun = run_grid(grid, journal=journal, resume=False, workers=1)
        assert all(o.worker != "journal" for o in rerun)

    def test_torn_journal_line_is_tolerated(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        grid = _grid()
        run_grid(grid, journal=journal, workers=1)
        with open(journal, "a") as fh:
            fh.write('{"kind": "outcome", "key": "torn-by')  # kill -9 mid-write
        resumed = run_grid(grid, journal=journal, workers=1)
        assert all(o.worker == "journal" for o in resumed)

    def test_failed_cells_are_journalled_but_not_resumed(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        boom = functools.partial(_always_raises)
        grid = Grid(factories=(boom,), machines=(machine_a(),), modes=MODES, seeds=(1,))
        first = run_grid(grid, journal=journal, workers=1)
        assert all(o.status == "failed" for o in first)
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        outcome_lines = [d for d in lines if d["kind"] == "outcome"]
        assert len(outcome_lines) == len(grid)
        assert all("result_json" not in d for d in outcome_lines)
        # Failures never resume: the cells run (and fail) again.
        again = run_grid(grid, journal=journal, workers=1)
        assert all(o.status == "failed" and o.worker != "journal" for o in again)

    def test_begin_lines_record_schema_and_fingerprint(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_grid(_grid(seeds=(1,)), journal=journal, workers=1)
        begin = json.loads(journal.read_text().splitlines()[0])
        assert begin["kind"] == "begin"
        assert begin["schema"] == "repro.sweep_journal/v1"
        assert begin["total"] == 2 and begin["resumed"] == 0
        assert begin["fingerprint"]

    def test_journal_composes_with_result_cache(self, tmp_path):
        from repro.runner import ResultCache

        journal = tmp_path / "journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        grid = _grid(seeds=(6,))
        fresh = run_grid(grid, journal=journal, workers=1, cache=cache)
        # Wipe the journal but keep the cache: outcomes come back as
        # cache hits with the same bytes.
        journal.unlink()
        cached = run_grid(grid, journal=journal, workers=1, cache=cache)
        assert all(o.worker == "cache" for o in cached)
        assert [o.result_json for o in cached] == [o.result_json for o in fresh]

    def test_events_still_reach_the_user_bus(self, tmp_path):
        from repro.runner.monitor import SweepMonitor

        monitor = SweepMonitor()
        journal = tmp_path / "journal.jsonl"
        grid = _grid(seeds=(8,))
        run_grid(grid, journal=journal, workers=1, events=monitor)
        assert monitor.counts["ok"] == len(grid)
        assert monitor.inflight == 0
