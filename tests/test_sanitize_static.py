"""Static AST pass tests: synthetic sources plus the repo-tree regression."""

import os
import textwrap

from repro.sanitize import StaticSanitizer, static_check

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _check(source):
    return StaticSanitizer().check_source(textwrap.dedent(source), filename="synthetic.py")


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestDroppedEvents:
    def test_bare_fence_statement_is_flagged(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                yield t.write(r.addr(0), 8)
                t.fence()  # built, never yielded: silently no-op
            """
        )
        dropped = [d for d in diagnostics if d.rule == "static.dropped-event"]
        assert dropped and dropped[0].severity == "error"
        assert "fence" in dropped[0].message

    def test_dropped_block_method_mentions_yield_from(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(4096)
                t.write_block(r.addr(0), 4096)
            """
        )
        dropped = [d for d in diagnostics if d.rule == "static.dropped-event"]
        assert dropped and "yield from" in dropped[0].message

    def test_yielded_events_are_clean(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                yield t.write(r.addr(0), 8)
                yield t.fence()
            """
        )
        assert "static.dropped-event" not in _rules(diagnostics)


class TestYieldIterator:
    def test_yield_of_block_method_is_flagged(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(4096)
                yield t.write_block(r.addr(0), 4096)  # yields the iterator
            """
        )
        flagged = [d for d in diagnostics if d.rule == "static.yield-iterator"]
        assert flagged and flagged[0].severity == "error"

    def test_yield_from_is_clean(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(4096)
                yield from t.write_block(r.addr(0), 4096)
            """
        )
        assert "static.yield-iterator" not in _rules(diagnostics)


class TestUnlabelledWrites:
    def test_stores_outside_provenance_block_in_labelled_body(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                with t.function("hot", file="x.c", line=1):
                    yield t.write(r.addr(0), 8)
                yield t.write(r.addr(8), 8)  # attributed to <unlabelled>
            """
        )
        unlabelled = [d for d in diagnostics if d.rule == "static.unlabelled-write"]
        assert unlabelled and unlabelled[0].severity == "warning"

    def test_fully_labelled_body_is_clean(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                with t.function("hot", file="x.c", line=1):
                    yield t.write(r.addr(0), 8)
                    yield t.write(r.addr(8), 8)
            """
        )
        assert "static.unlabelled-write" not in _rules(diagnostics)

    def test_helper_generator_without_alloc_is_exempt(self):
        # Helpers inherit the caller's dynamic provenance scope.
        diagnostics = _check(
            """
            def helper(t: ThreadCtx, addr):
                yield t.write(addr, 8)
            """
        )
        assert "static.unlabelled-write" not in _rules(diagnostics)


class TestRawAddresses:
    def test_arithmetic_on_region_base_is_flagged(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                yield t.read(r.base + 128, 8)  # out of bounds, unchecked
            """
        )
        raw = [d for d in diagnostics if d.rule == "static.raw-address"]
        assert raw and "r.addr(offset)" in raw[0].message

    def test_region_addr_is_clean(self):
        diagnostics = _check(
            """
            def body(t: ThreadCtx):
                r = t.alloc(64)
                yield t.read(r.addr(0), 8)
            """
        )
        assert "static.raw-address" not in _rules(diagnostics)


class TestSyntaxErrors:
    def test_unparsable_source_yields_one_error(self):
        diagnostics = _check("def broken(:\n")
        assert _rules(diagnostics) == ["static.syntax-error"]
        assert diagnostics[0].severity == "error"


class TestRepoTreeRegression:
    def test_workloads_and_examples_are_lint_clean(self):
        """The tree the CLI's ``--self`` mode lints must stay clean."""
        paths = [
            os.path.join(_REPO_ROOT, "src", "repro", "workloads"),
            os.path.join(_REPO_ROOT, "examples"),
        ]
        assert static_check(paths) == []
