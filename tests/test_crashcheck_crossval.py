"""Cross-validation harness + the AutoTuner / runner integrations."""

from __future__ import annotations

import functools
import json

import pytest

from repro.core.autotune import AutoTuner
from repro.core.prestore import PrestoreMode
from repro.crashcheck import cross_validate, patches_for
from repro.crashcheck.cli import run_self_check
from repro.faults.workloads import KVPersistWorkload
from repro.runner.cells import Cell, cache_key, run_cell


def _kv_factory():
    return KVPersistWorkload(keys=8, value_size=256, operations=10)


@pytest.mark.parametrize(
    "mode,adr",
    [
        (PrestoreMode.NONE, True),
        (PrestoreMode.CLEAN, True),
        (PrestoreMode.CLEAN, False),
        (PrestoreMode.DEMOTE, True),
    ],
)
def test_cross_validate_agrees(tiny_machine_a, mode, adr) -> None:
    result = cross_validate(
        _kv_factory, tiny_machine_a, mode=mode, adr=adr, max_probes=3, fractions=(0.5,)
    )
    assert result["mismatches"] == []
    assert result["ok"]
    assert result["dynamic_runs"] > 0
    if mode is not PrestoreMode.CLEAN or not adr:
        assert result["probes"] > 0  # vulnerable windows were actually probed


def test_cross_validate_is_json_stable(tiny_machine_a) -> None:
    result = cross_validate(
        _kv_factory, tiny_machine_a, mode=PrestoreMode.NONE, max_probes=2, fractions=(0.5,)
    )
    assert json.loads(json.dumps(result)) == result


def test_fast_self_check_passes() -> None:
    assert run_self_check(fast=True) == 0


# -- AutoTuner pre-gate -------------------------------------------------------------


class _FakeRecommendation:
    wants_prestore = True
    fallback = None

    def __init__(self, choice: PrestoreMode) -> None:
        self.choice = choice


class _FakeReport:
    def __init__(self, choice: PrestoreMode) -> None:
        self._choice = choice

    def recommendation_for(self, function: str):
        return _FakeRecommendation(self._choice)


class _FakeDirtBuster:
    """Recommends one fixed mode for every function — lets the tests
    steer the tuner into a known-bad (demote) candidate."""

    def __init__(self, choice: PrestoreMode) -> None:
        self._choice = choice

    def analyze(self, workload, spec, seed=1234):
        return _FakeReport(self._choice)


def test_gate_rejects_durability_regressions(tiny_machine_a) -> None:
    tuner = AutoTuner(crashcheck=True)
    demote = tuner.crashcheck_gate(
        _kv_factory, tiny_machine_a, patches_for(_kv_factory(), PrestoreMode.DEMOTE)
    )
    assert demote
    assert all(d.severity == "error" for d in demote)
    assert {d.rule for d in demote} >= {"crashcheck.missing-clwb"}
    clean = tuner.crashcheck_gate(
        _kv_factory, tiny_machine_a, patches_for(_kv_factory(), PrestoreMode.CLEAN)
    )
    assert clean == []


def test_tune_vetoes_before_measuring(tiny_machine_a) -> None:
    """A statically unsafe candidate never gets its measurement run."""
    tuner = AutoTuner(dirtbuster=_FakeDirtBuster(PrestoreMode.DEMOTE), crashcheck=True)
    result = tuner.tune(_kv_factory, tiny_machine_a)
    assert not result.kept
    assert result.patched is None  # the patched cell was never spent
    assert result.adopted == {}
    assert result.new_diagnostics
    assert all(d.rule.startswith("crashcheck.") for d in result.new_diagnostics)


def test_tune_without_gate_still_measures(tiny_machine_a) -> None:
    tuner = AutoTuner(dirtbuster=_FakeDirtBuster(PrestoreMode.DEMOTE), crashcheck=False)
    result = tuner.tune(_kv_factory, tiny_machine_a)
    assert result.patched is not None
    assert result.new_diagnostics == []


def test_gate_allows_safe_candidate_through(tiny_machine_a) -> None:
    tuner = AutoTuner(dirtbuster=_FakeDirtBuster(PrestoreMode.CLEAN), crashcheck=True)
    result = tuner.tune(_kv_factory, tiny_machine_a)
    assert result.patched is not None  # gate passed, measurement happened
    assert result.new_diagnostics == []


# -- Cell opt-in --------------------------------------------------------------------


def test_cell_crashcheck_report(tiny_machine_a) -> None:
    cell = Cell(
        make_workload=_kv_factory,
        spec=tiny_machine_a,
        mode=PrestoreMode.CLEAN,
        endorsed_only=False,
        crashcheck=True,
    )
    run = run_cell(cell)
    doc = json.loads(run.result_json)
    report = doc["extra"]["crashcheck_report"]
    assert report["counts"]["guaranteed-durable"] == len(report["acks"]) > 0
    assert report["adr"] is True


def test_cell_without_crashcheck_has_no_report(tiny_machine_a) -> None:
    cell = Cell(make_workload=_kv_factory, spec=tiny_machine_a, mode=PrestoreMode.CLEAN)
    doc = json.loads(run_cell(cell).result_json)
    assert "crashcheck_report" not in doc.get("extra", {})


def test_cache_key_covers_crashcheck_flag(tiny_machine_a) -> None:
    factory = functools.partial(KVPersistWorkload, keys=8, value_size=256, operations=10)
    on = cache_key(Cell(make_workload=factory, spec=tiny_machine_a, crashcheck=True))
    off = cache_key(Cell(make_workload=factory, spec=tiny_machine_a, crashcheck=False))
    assert on is not None and off is not None
    assert on != off
