"""Policy-state / tag-column consistency invariants (DESIGN.md §15).

The hierarchy keeps each level's truth in flat columns (tags, dirty,
set-fill) plus an index and a per-set policy state.  These must never
desync: the victim a policy ranks has to hold a resident line whenever
the set is full.  Both the generic :meth:`CacheLevel.install` and the
generated ``<fused-fill>`` walk guard that with a
"policy chose an empty way as victim" :class:`SimulationError` —
converted here from a defensive raise into a tested invariant, after a
real desync bug: ``demote_line`` used to drop the LLC eviction its
re-install caused, leaving the victim resident in inner indexes while
gone from the LLC.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.cache import EMPTY, CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.sim.replacement import _POLICIES, make_policy

ALL_POLICIES = sorted(_POLICIES)


def _level(size=512, ways=2, line=64, policy="lru", name="L1", hashed=False, latency=4):
    return CacheLevel(
        CacheLevelSpec(
            name=name, size_bytes=size, ways=ways, hit_latency=latency, hashed_index=hashed
        ),
        line,
        make_policy(policy, seed=3),
    )


def _hierarchy(policy="lru", hashed=False):
    l1 = _level(size=512, ways=2, policy=policy, name="L1")
    l2 = _level(size=2048, ways=4, policy=policy, name="L2", hashed=hashed, latency=12)
    return CacheHierarchy([l1, l2], 64)


def _check_level(lvl):
    """Structural consistency of one level's columns.

    Every index entry points at a tag slot holding its line, every
    non-EMPTY tag is indexed, and set-fill counts match the tag column
    set by set.  This is exactly the state the victim invariant depends
    on.
    """
    tags, ways = lvl._tags, lvl._ways
    assert len(lvl._index) == sum(1 for t in tags if t != EMPTY)
    for line, slot in lvl._index.items():
        assert tags[slot] == line
    for set_i in range(lvl.num_sets):
        base = set_i * ways
        filled = sum(1 for t in tags[base : base + ways] if t != EMPTY)
        assert lvl._set_fill[set_i] == filled


def _check_hierarchy(h):
    for lvl in h.levels:
        _check_level(lvl)
    # Inclusion at rest: every inner-resident line has an LLC copy.
    last = h.last_level
    for lvl in h.levels[:-1]:
        for line in lvl.resident_lines():
            assert last.contains(line), f"{lvl.spec.name} holds {line} but LLC lost it"


class TestChurn:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("hashed", [False, True])
    def test_mixed_churn_never_desyncs(self, policy, hashed):
        # Writes, fused cold fills, cleans, demotes, and invalidates over
        # a line pool small enough to force constant set conflict.  The
        # invariant checker runs after every op; a desync anywhere would
        # also surface as the SimulationError this file pins down below.
        h = _hierarchy(policy, hashed=hashed)
        rng = random.Random(1234)
        pool = range(48)
        wbs = []
        for _ in range(600):
            line = rng.choice(pool)
            op = rng.randrange(5)
            if op == 0 and not h.contains(line):
                h.fill_write_miss(line, wbs)
            elif op <= 1:
                h.access_line(line, is_write=bool(rng.getrandbits(1)))
            elif op == 2:
                h.clean_line(line)
            elif op == 3:
                h.demote_line(line, wbs)
            else:
                h.invalidate_line(line)
            _check_hierarchy(h)


class TestVictimInvariant:
    def _fill_set(self, lvl, set_i=0):
        lines = [set_i + i * lvl.num_sets for i in range(lvl.spec.ways)]
        for line in lines:
            lvl.install(line)
        return lines

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_install_raises_on_desynced_state(self, policy):
        # White-box: blank the tag column of a full set while leaving
        # set-fill (and the policy state) claiming it is full.  Whatever
        # way the policy then ranks, its tag is EMPTY — the generic
        # install() must refuse rather than evict a phantom line.
        lvl = _level(policy=policy)
        self._fill_set(lvl)
        for way in range(lvl.spec.ways):
            lvl._tags[way] = EMPTY
        with pytest.raises(SimulationError, match="policy chose an empty way"):
            lvl.install(lvl.num_sets * lvl.spec.ways)  # maps to set 0, full

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_fused_fill_raises_on_desynced_state(self, policy):
        # The same invariant lives in the generated <fused-fill> code:
        # corrupt the LLC's set 0 the same way, then drive a
        # miss-everywhere fill through the hierarchy's fused walk.
        h = _hierarchy(policy)
        l2 = h.last_level
        victims = [i * l2.num_sets for i in range(l2.spec.ways)]
        for line in victims:
            h.access_line(line, is_write=False)
        assert l2._set_fill[0] == l2.spec.ways
        for way in range(l2.spec.ways):
            l2._tags[way] = EMPTY
        fresh = l2.num_sets * l2.spec.ways  # maps to LLC set 0, missing everywhere
        assert not h.contains(fresh)
        with pytest.raises(SimulationError, match="L2: policy chose an empty way"):
            h.fill_write_miss(fresh, [])


class TestDemotePropagatesEvictions:
    def test_demote_install_eviction_reaches_memory_and_inner_levels(self):
        # Regression: demote_line re-installs into the LLC, which can
        # evict a victim.  Dropping that eviction left the victim in the
        # L1 index while gone from the LLC — the desync the tests above
        # guard against — and swallowed its dirty writeback.
        h = _hierarchy("lru")
        l1, l2 = h.levels
        # Build LLC set 0 directly so its LRU order is pinned: the
        # first-installed line is the victim, dirty, with a stale-able
        # copy sitting in L1.
        victim, *rest = [i * l2.num_sets for i in range(l2.spec.ways)]
        l2.install(victim, dirty=True)
        for line in rest:
            l2.install(line)
        l1.install(victim)
        # An inclusion-breaking race (outer eviction during a fill) can
        # leave a line inner-only; demote must then install it in the LLC.
        demoted = l2.num_sets * l2.spec.ways  # maps to LLC set 0
        l1.install(demoted, dirty=True)
        wbs = []
        assert h.demote_line(demoted, wbs)
        assert h.contains(demoted) and h.last_level.is_dirty(demoted)
        # The eviction propagated: victim is gone *everywhere* (no stale
        # inner copies) and its dirt reached the writeback list.
        assert not h.contains(victim)
        assert victim in wbs
        _check_hierarchy(h)

    def test_demote_without_eviction_owes_nothing(self):
        h = _hierarchy("lru")
        h.access_line(0, is_write=True)
        wbs = []
        assert h.demote_line(0, wbs)
        assert wbs == []
        assert not h.levels[0].contains(0) and h.last_level.is_dirty(0)
        _check_hierarchy(h)
