"""RunResult/Diagnostic JSON round-trips and the derived-ratio NaN convention."""

import math

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.errors import Diagnostic
from repro.obs.timeline import TimelineSample
from repro.sim.cache import CacheStats
from repro.sim.event import CodeSite
from repro.sim.machine import machine_a
from repro.sim.stats import CoreStats, RunResult
from repro.workloads.microbench import Listing3


def _sample(**overrides):
    fields = dict(
        t=10.0,
        dt=10.0,
        device_bytes_received=0,
        device_media_bytes_written=0,
        device_bytes_read=0,
        store_buffer_occupancy=(0,),
        combiner_open_entries=0,
        combiner_closes=0,
        cache_accesses=0,
        cache_hits=0,
        fence_stall_cycles=0.0,
        backpressure_stall_cycles=0.0,
        running_write_amplification=1.0,
    )
    fields.update(overrides)
    return TimelineSample(**fields)


class TestNaNConvention:
    """One test per derived ratio (DESIGN.md §9): zero denominator -> NaN."""

    def test_ipc_nan_on_zero_cycles(self):
        assert math.isnan(CoreStats(core_id=0).ipc)
        assert CoreStats(core_id=0, cycles=10.0, instructions=5).ipc == 0.5

    def test_hit_rate_nan_on_zero_accesses(self):
        stats = CacheStats()
        assert math.isnan(stats.hit_rate)
        stats.hits, stats.misses = 3, 1
        assert stats.hit_rate == 0.75

    def test_throughput_nan_on_zero_cycles(self):
        result = _empty_result(cycles=0.0, cycles_with_drain=0.0)
        assert math.isnan(result.throughput())
        live = _empty_result(cycles=500.0, cycles_with_drain=1000.0, work_items=2)
        assert live.throughput() == 2.0
        assert live.throughput(with_drain=False) == 4.0

    def test_sample_cache_hit_rate_nan_on_zero_accesses(self):
        assert math.isnan(_sample().cache_hit_rate)
        assert _sample(cache_accesses=4, cache_hits=3).cache_hit_rate == 0.75

    def test_sample_bandwidth_nan_on_zero_interval(self):
        assert math.isnan(_sample(dt=0.0).device_write_bandwidth)
        assert _sample(device_media_bytes_written=640).device_write_bandwidth == 64.0

    def test_write_amplification_nan_on_zero_bytes(self):
        assert math.isnan(_empty_result().write_amplification)
        live = _empty_result()
        live.device_bytes_received = 128
        live.device_media_bytes_written = 256
        assert live.write_amplification == 2.0


def _empty_result(cycles=0.0, cycles_with_drain=0.0, work_items=0) -> RunResult:
    return RunResult(
        machine_name="m",
        cycles=cycles,
        cycles_with_drain=cycles_with_drain,
        instructions=0,
        cores=[],
        cache_hits={},
        cache_misses={},
        cache_evictions={},
        cache_dirty_evictions={},
        device_writebacks=0,
        device_bytes_received=0,
        device_media_bytes_written=0,
        device_reads=0,
        device_bytes_read=0,
        work_items=work_items,
    )


class TestDiagnosticSerialization:
    def test_round_trip_with_sites(self):
        diag = Diagnostic(
            rule="race.visibility",
            severity="error",
            message="racy publish",
            site=CodeSite(function="fill_msg", file="x9.c", line=201, ip=7),
            related=(CodeSite(function="reader", file="x9.c", line=310, ip=9),),
            addr=0x1000,
            cache_line=64,
            core_id=2,
            instr_index=17,
            count=3,
        )
        restored = Diagnostic.from_dict(diag.to_dict())
        assert restored == diag

    def test_round_trip_without_sites(self):
        diag = Diagnostic(rule="static.dropped-event", severity="warning", message="m")
        restored = Diagnostic.from_dict(diag.to_dict())
        assert restored == diag
        assert restored.site is None
        assert restored.related == ()


class TestRunResultSerialization:
    def test_synthetic_round_trip(self):
        result = _empty_result(cycles=10.0, cycles_with_drain=20.0, work_items=1)
        result.cores = [CoreStats(core_id=0, cycles=10.0, instructions=7)]
        result.cache_hits = {"L1": 5}
        result.extra = {"custom": 1.5}
        restored = RunResult.from_json(result.to_json())
        assert restored == result

    def test_real_run_round_trip_with_diagnostics_and_timeline(self):
        # Listing 3 patched clean under sanitize+obs exercises every
        # optional field at once: diagnostics with CodeSites (the
        # hot-rewrite lint fires) and a populated timeline.
        patches = PatchConfig()
        patches.set_mode(Listing3.SITE.name, PrestoreMode.CLEAN)
        result = Listing3(iterations=2000).run(
            machine_a(num_cores=2), patches, seed=3, sanitize=True, obs=True
        ).run
        assert result.diagnostics
        assert result.timeline is not None
        restored = RunResult.from_json(result.to_json())
        assert restored.machine_name == result.machine_name
        assert restored.cycles == result.cycles
        assert restored.cores == result.cores
        assert restored.diagnostics == result.diagnostics
        assert len(restored.timeline) == len(result.timeline)
        assert restored.timeline.cumulative == result.timeline.cumulative
        assert [s.to_dict() for s in restored.timeline] == [
            s.to_dict() for s in result.timeline
        ]
        # And the whole document survives a second pass unchanged.
        assert RunResult.from_json(restored.to_json()).to_dict() == restored.to_dict()
