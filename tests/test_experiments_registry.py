"""Unit tests for the experiment framework and the cheap experiments."""

import pytest

import repro.experiments  # noqa: F401  (registers everything)
from repro.errors import ExperimentError
from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    SeriesRow,
    all_ids,
    get,
    register,
)

PAPER_IDS = {
    "table1",
    "table2",
    "fig3",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "x9",
    "listing3",
    "sec741",
    "sec742",
}

ABLATION_IDS = {"abl-replacement", "abl-combiner", "abl-ycsb-mixes", "abl-granularity"}

#: Beyond-the-paper artifacts (ROADMAP extensions) that register too.
EXTRA_IDS = {"faults-window", "serve"}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(all_ids()) == PAPER_IDS | ABLATION_IDS | EXTRA_IDS

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get("fig99")

    def test_duplicate_registration_rejected(self):
        class Dup(Experiment):
            id = "table1"

            def run(self, fast=True, seed=1234):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ExperimentError):
            register(Dup)

    def test_non_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            register(dict)

    def test_all_experiments_have_claims(self):
        for eid in all_ids():
            exp = get(eid)
            assert exp.title and exp.paper_claim


class TestResultHelpers:
    def _result(self):
        rows = [
            SeriesRow({"x": 1}, {"y": 2.0}),
            SeriesRow({"x": 2}, {"y": 4.0}),
        ]
        return ExperimentResult("t", "title", "claim", rows)

    def test_rows_where(self):
        result = self._result()
        assert len(result.rows_where(x=1)) == 1
        assert result.rows_where(x=3) == []

    def test_metric_access(self):
        row = SeriesRow({"x": 1}, {"y": 2.0})
        assert row.metric("y") == 2.0
        with pytest.raises(ExperimentError):
            row.metric("z")

    def test_table_and_render(self):
        text = self._result().render()
        assert "claim" in text and "4.000" in text


class TestCheapExperiments:
    """Full runs of the experiments cheap enough for the unit suite."""

    def test_table1_passes_checks(self):
        result = get("table1").run_checked(fast=True)
        assert not [n for n in result.notes if n.startswith("SHAPE")]

    def test_listing3_passes_checks(self):
        result = get("listing3").run_checked(fast=True)
        assert not [n for n in result.notes if n.startswith("SHAPE")]
        clean = result.rows_where(variant="clean")[0]
        assert clean.metric("slowdown") > 20

    def test_x9_passes_checks(self):
        result = get("x9").run_checked(fast=True)
        assert not [n for n in result.notes if n.startswith("SHAPE")]
        for row in result.rows:
            assert row.metric("latency_reduction_pct") > 0
