"""Unit tests for the pre-store primitive and patch configuration."""

import pytest

from repro.core.prestore import (
    CYCLES_PER_PRESTORE,
    PatchConfig,
    PatchSite,
    PrestoreMode,
    PrestoreOp,
)
from repro.errors import ConfigurationError


class TestPrestoreOps:
    def test_cheap_by_design(self):
        """Section 5: a pre-store costs ~1 cycle to issue."""
        assert CYCLES_PER_PRESTORE == 1

    def test_mode_to_op_mapping(self):
        assert PrestoreMode.CLEAN.op is PrestoreOp.CLEAN
        assert PrestoreMode.DEMOTE.op is PrestoreOp.DEMOTE
        assert PrestoreMode.NONE.op is None
        assert PrestoreMode.SKIP.op is None  # skipping rewrites the stores

    def test_string_forms(self):
        assert str(PrestoreOp.CLEAN) == "clean"
        assert str(PrestoreMode.SKIP) == "skip"


class TestPatchConfig:
    def test_baseline_is_all_none(self):
        config = PatchConfig.baseline()
        assert config.mode("anything") is PrestoreMode.NONE
        assert config.enabled_sites() == {}

    def test_uniform(self):
        config = PatchConfig.uniform(PrestoreMode.CLEAN)
        assert config.mode("any.site") is PrestoreMode.CLEAN

    def test_per_site_override(self):
        config = PatchConfig({"a": PrestoreMode.CLEAN, "b": PrestoreMode.NONE})
        assert config.mode("a") is PrestoreMode.CLEAN
        assert config.mode("b") is PrestoreMode.NONE
        assert config.mode("c") is PrestoreMode.NONE
        assert config.enabled_sites() == {"a": PrestoreMode.CLEAN}

    def test_type_validation(self):
        with pytest.raises(ConfigurationError):
            PatchConfig({"a": "clean"})
        with pytest.raises(ConfigurationError):
            PatchConfig(default="clean")

    def test_describe_resolves_sites(self):
        site = PatchSite(name="a", function="craft", file="x.c", line=12)
        config = PatchConfig({"a": PrestoreMode.SKIP})
        text = config.describe([site])
        assert "a: skip" in text and "x.c:12" in text


class TestPatchSite:
    def test_str(self):
        site = PatchSite(name="mg.psinv", function="psinv", file="mg.f90", line=614)
        assert "mg.f90:614" in str(site)
        assert "psinv" in str(site)
