"""The experiments' shape checks must actually catch regressions.

Each test feeds a synthetic *wrong* result into an experiment's
``check()`` and asserts it complains — guarding the guards.
"""


from repro.experiments import get
from repro.experiments.registry import ExperimentResult, SeriesRow


def _result(eid, rows):
    return ExperimentResult(eid, "t", "c", [SeriesRow(c, m) for c, m in rows])


class TestFig3Checks:
    def test_detects_missing_64b_neutrality(self):
        exp = get("fig3")
        rows = [({"element_size": 64, "threads": 1}, {"speedup_clean": 2.5, "wa_baseline": 4.0, "wa_clean": 4.0})]
        assert exp.check(_result("fig3", rows))

    def test_detects_unscaled_threads(self):
        exp = get("fig3")
        rows = [
            ({"element_size": 4096, "threads": 1}, {"speedup_clean": 3.0, "wa_baseline": 3.8, "wa_clean": 1.0}),
            ({"element_size": 4096, "threads": 5}, {"speedup_clean": 1.9, "wa_baseline": 3.8, "wa_clean": 1.0}),
        ]
        failures = exp.check(_result("fig3", rows))
        assert any("grow with threads" in f for f in failures)


class TestFig5Checks:
    def test_detects_nonzero_start(self):
        exp = get("fig5")
        rows = [
            ({"machine": m, "reads_before_fence": n}, {"improvement_pct": v})
            for m in ("B-fast", "B-slow")
            for n, v in ((0, 30.0), (20, 50.0), (160, 10.0))
        ]
        failures = exp.check(_result("fig5", rows))
        assert any("0 reads" in f for f in failures)

    def test_detects_missing_decay(self):
        exp = get("fig5")
        rows = [
            ({"machine": m, "reads_before_fence": n}, {"improvement_pct": v})
            for m in ("B-fast", "B-slow")
            for n, v in ((0, 1.0), (20, 30.0), (160, 45.0))
        ]
        failures = exp.check(_result("fig5", rows))
        assert any("decay" in f for f in failures)


class TestKVChecks:
    def test_fig10_detects_clean_beating_skip(self):
        exp = get("fig10")
        rows = [
            (
                {"value_size": 4096},
                {"speedup_clean": 2.5, "speedup_skip": 1.9,
                 "throughput_baseline": 1, "throughput_clean": 2, "throughput_skip": 1.5},
            )
        ]
        failures = exp.check(_result("fig10", rows))
        assert any("beat cleaning" in f for f in failures)

    def test_fig12_detects_surviving_amplification(self):
        exp = get("fig12")
        rows = [({"value_size": 4096}, {"wa_baseline": 3.8, "wa_clean": 3.0, "wa_skip": 1.0})]
        failures = exp.check(_result("fig12", rows))
        assert any("eliminate WA" in f for f in failures)


class TestMachineBChecks:
    def test_fig13_detects_slow_beating_fast(self):
        exp = get("fig13")
        rows = [
            ({"machine": "B-fast"}, {"speedup_clean": 1.15, "fence_stall_baseline": 10, "fence_stall_clean": 5, "throughput_baseline": 1, "throughput_clean": 1.15}),
            ({"machine": "B-slow"}, {"speedup_clean": 1.60, "fence_stall_baseline": 10, "fence_stall_clean": 5, "throughput_baseline": 1, "throughput_clean": 1.6}),
        ]
        failures = exp.check(_result("fig13", rows))
        assert any("fast FPGA" in f for f in failures)


class TestOverheadChecks:
    def test_listing3_detects_cheap_slowdown(self):
        exp = get("listing3")
        rows = [
            ({"variant": "baseline"}, {"cycles_per_iteration": 1.0}),
            ({"variant": "clean"}, {"cycles_per_iteration": 3.0, "slowdown": 3.0}),
        ]
        failures = exp.check(_result("listing3", rows))
        assert failures

    def test_sec741_detects_real_overhead(self):
        exp = get("sec741")
        rows = [({"workload": "nas-mg"}, {"overhead_pct": 12.0})]
        failures = exp.check(_result("sec741", rows))
        assert any("free" in f for f in failures)

    def test_sec742_detects_harmless_fftz2(self):
        exp = get("sec742")
        rows = [
            ({"workload": "nas-ft", "patched_site": "ft.fftz2"}, {"slowdown": 1.0}),
            ({"workload": "nas-is", "patched_site": "is.rank"}, {"slowdown": 1.0}),
        ]
        failures = exp.check(_result("sec742", rows))
        assert any("fftz2" in f for f in failures)


class TestTable2Checks:
    def test_detects_misclassification(self):
        exp = get("table2")
        rows = [
            (
                {"workload": "nas-lu", "recommendations": "-"},
                {"write_intensive": 1.0, "sequential_writes": 0.0,
                 "writes_before_fence": 0.0, "matches_paper": 0.0},
            )
        ]
        failures = exp.check(_result("table2", rows))
        assert any("nas-lu" in f for f in failures)

    def test_detects_wrong_recommendation(self):
        exp = get("table2")
        rows = [
            (
                {"workload": "nas-ft", "recommendations": "fftz2->clean"},
                {"write_intensive": 1.0, "sequential_writes": 1.0,
                 "writes_before_fence": 0.0, "matches_paper": 1.0},
            )
        ]
        failures = exp.check(_result("table2", rows))
        assert any("fftz2" in f for f in failures)
