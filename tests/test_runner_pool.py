"""The process-pool runner: determinism, caching, and integration."""

import functools
import json

import pytest

from repro.core.autotune import AutoTuner
from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants
from repro.runner import (
    Cell,
    ResultCache,
    active_session,
    cache_key,
    describe_factory,
    execute_cells,
    runner_session,
)
from repro.runner.bench import run_bench
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing1

MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN)


def _listing1_factory():
    """Module-level spy factory: describable, picklable, and countable."""
    _listing1_factory.calls += 1
    return Listing1(element_size=512, num_elements=64, iterations=120)


_listing1_factory.calls = 0


def _cells(seed=7, factory=_listing1_factory):
    return [Cell(make_workload=factory, spec=machine_a(), mode=m, seed=seed) for m in MODES]


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_does_not_change_results(self, workers):
        # The determinism contract: same seed, bit-identical serialised
        # RunResult JSON no matter how the cells were sharded.
        reference = [o.result_json for o in execute_cells(_cells(), workers=1)]
        parallel = [o.result_json for o in execute_cells(_cells(), workers=workers)]
        assert parallel == reference

    def test_parallel_runs_use_distinct_processes(self):
        outcomes = execute_cells(_cells(), workers=2)
        workers = {o.worker for o in outcomes}
        assert all(w.startswith("pid") for w in workers)
        assert len(workers) == 2

    def test_unpicklable_factory_falls_back_inline(self):
        # Lambdas cannot cross the process boundary; they must still run
        # (inline) and produce the same result as a picklable factory.
        reference = execute_cells(_cells(), workers=1)[0].result_json
        cell = Cell(
            make_workload=lambda: Listing1(element_size=512, num_elements=64, iterations=120),
            spec=machine_a(),
            mode=PrestoreMode.NONE,
            seed=7,
        )
        (outcome,) = execute_cells([cell], workers=2)
        assert outcome.result_json == reference


class TestCache:
    def test_warm_run_performs_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = execute_cells(_cells(), workers=1, cache=cache)
        assert not any(o.cached for o in cold)
        calls_after_cold = _listing1_factory.calls

        warm = execute_cells(_cells(), workers=1, cache=cache)
        # Every cell hit; the workload factory was never called again.
        assert all(o.cached for o in warm)
        assert _listing1_factory.calls == calls_after_cold
        assert [o.result_json for o in warm] == [o.result_json for o in cold]

    def test_cache_key_covers_seed_mode_and_machine(self):
        base = cache_key(_cells(seed=7)[0])
        assert base is not None
        assert cache_key(_cells(seed=8)[0]) != base
        assert base != cache_key(_cells(seed=7)[1])  # NONE vs CLEAN

    def test_lambda_factory_is_uncacheable(self):
        cell = Cell(make_workload=lambda: Listing1(), spec=machine_a(), mode=PrestoreMode.NONE)
        assert describe_factory(cell.make_workload) is None
        assert cache_key(cell) is None

    def test_partial_factory_is_describable(self):
        factory = functools.partial(Listing1, element_size=512, iterations=10)
        desc = describe_factory(factory)
        assert "Listing1" in desc and "element_size=512" in desc

    def test_cache_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_cells(_cells(), workers=1, cache=cache)
        assert len(cache) == len(MODES)
        assert cache.clear() == len(MODES)
        assert len(cache) == 0


class TestIntegration:
    def test_run_variants_workers_matches_serial(self, tiny_machine_a):
        factory = functools.partial(Listing1, element_size=512, num_elements=64, iterations=120)
        serial = run_variants(factory, tiny_machine_a, MODES, seed=7)
        pooled = run_variants(factory, tiny_machine_a, MODES, seed=7, workers=2)
        for mode in MODES:
            assert pooled[mode].to_json() == serial[mode].to_json()

    def test_run_variants_progress_reports_every_cell(self, tiny_machine_a):
        lines = []
        factory = functools.partial(Listing1, element_size=512, num_elements=64, iterations=120)
        run_variants(factory, tiny_machine_a, MODES, seed=7, progress=lines.append)
        assert len(lines) == len(MODES)
        assert all("listing1" in line for line in lines)

    def test_runner_session_is_ambient(self, tmp_path):
        assert active_session() is None
        with runner_session(workers=2, cache_dir=tmp_path) as session:
            assert active_session() is session
            execute_cells(_cells())
            warm = execute_cells(_cells())
        assert active_session() is None
        assert all(o.cached for o in warm)

    def test_autotuner_through_pool_matches_serial(self, tiny_machine_a):
        factory = functools.partial(Listing1, element_size=1024, num_elements=128, iterations=300)
        serial = AutoTuner().tune(factory, tiny_machine_a, seed=7)
        pooled = AutoTuner(workers=2).tune(factory, tiny_machine_a, seed=7)
        assert pooled.kept == serial.kept
        assert pooled.adopted == serial.adopted
        assert pooled.baseline.to_json() == serial.baseline.to_json()
        assert pooled.speedup == pytest.approx(serial.speedup)


class TestBench:
    def test_bench_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_runner.json"
        cells = _cells(factory=functools.partial(
            Listing1, element_size=512, num_elements=64, iterations=120
        ))
        doc = run_bench(workers=2, cache_dir=tmp_path / "cache", out=out, cells=cells)
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["deterministic"] is True
        assert on_disk["warm_all_cached"] is True
        assert on_disk["cells"] == len(cells)
        assert doc["warm_cache_hits"] == len(cells)
