"""Tests for the auto-tuner and trace export extensions."""

import io

import pytest

from repro.core.autotune import AutoTuner
from repro.core.prestore import PrestoreMode
from repro.dirtbuster.export import dump_records, load_records, loads_record
from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig
from repro.dirtbuster.trace import FullTracer
from repro.errors import TraceError
from repro.sim.machine import machine_a, machine_b_fast
from repro.workloads.microbench import Listing1, Listing3
from repro.workloads.phoronix import ReadMostlyWorkload
from repro.workloads.x9 import X9Workload


@pytest.fixture(scope="module")
def tuner():
    return AutoTuner(DirtBuster(DirtBusterConfig(sampling_period=53)))


class TestAutoTuner:
    def test_listing1_tuned_to_clean_and_kept(self, tuner):
        result = tuner.tune(
            lambda: Listing1(
                element_size=1024, num_elements=1024, iterations=1200, compute_per_iter=4096
            ),
            machine_a(),
        )
        assert result.adopted == {"listing1.element": PrestoreMode.CLEAN}
        assert result.kept
        assert result.speedup > 1.2
        assert "kept" in result.summary()

    def test_listing3_left_alone(self, tuner):
        result = tuner.tune(lambda: Listing3(iterations=4000), machine_a())
        assert result.adopted == {}
        assert result.patched is None
        assert "no pre-store opportunities" in result.summary()

    def test_x9_tuned_to_demote(self, tuner):
        result = tuner.tune(lambda: X9Workload(messages=1200), machine_b_fast())
        assert result.adopted.get("x9.fill_msg") is PrestoreMode.DEMOTE
        assert result.kept

    def test_read_mostly_app_untouched(self, tuner):
        result = tuner.tune(
            lambda: ReadMostlyWorkload("pytorch", "stream", scale=300), machine_a()
        )
        assert result.adopted == {}

    def test_skip_fallback_to_clean(self):
        """allow_skip=False models the Fortran case: skip -> clean."""
        tuner = AutoTuner(
            DirtBuster(DirtBusterConfig(sampling_period=53)), allow_skip=False
        )
        workload = Listing1(
            element_size=1024,
            num_elements=1024,
            iterations=1200,
            compute_per_iter=4096,
            reread_field=False,  # no re-read -> DirtBuster says skip
        )
        report = tuner.dirtbuster.analyze(workload, machine_a())
        patches = tuner.patches_for(workload, report)
        mode = patches.mode("listing1.element")
        assert mode in (PrestoreMode.CLEAN, PrestoreMode.DEMOTE)
        assert mode is not PrestoreMode.SKIP


class TestTraceExport:
    def _trace(self):
        tracer = FullTracer()
        workload = Listing1(element_size=256, num_elements=64, iterations=60)
        workload.run(machine_a(), tracer=tracer)
        return tracer.records

    def test_roundtrip(self, tmp_path):
        records = self._trace()
        path = tmp_path / "trace.jsonl"
        written = dump_records(records, str(path))
        loaded = load_records(str(path))
        assert written == len(records) == len(loaded)
        for original, copy in zip(records, loaded):
            assert original.instr_index == copy.instr_index
            assert original.kind == copy.kind
            assert original.addr == copy.addr
            assert original.site.function == copy.site.function

    def test_roundtrip_via_file_object(self):
        records = self._trace()[:10]
        buffer = io.StringIO()
        dump_records(records, buffer)
        buffer.seek(0)
        assert len(load_records(buffer)) == 10

    def test_loaded_trace_feeds_instrumenter(self, tmp_path):
        from repro.dirtbuster.instrument import Instrumenter

        records = self._trace()
        path = tmp_path / "trace.jsonl"
        dump_records(records, str(path))
        instrumenter = Instrumenter(line_size=64)
        instrumenter.feed(load_records(str(path)))
        patterns = {p.function: p for p in instrumenter.patterns()}
        assert "listing1_loop" in patterns
        assert patterns["listing1_loop"].pct_sequential > 0.5

    def test_malformed_lines_rejected(self):
        with pytest.raises(TraceError):
            loads_record("not json")
        with pytest.raises(TraceError):
            loads_record('{"v": 99}')
        with pytest.raises(TraceError):
            loads_record('{"v": 1, "i": 0}')
