"""Smoke and behaviour tests for the remaining workload ports."""

import pytest

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.errors import WorkloadError
from repro.workloads.microbench import Listing1, Listing2, Listing3
from repro.workloads.nas import (
    ALL_NAS,
    FTWorkload,
    ISWorkload,
    LUWorkload,
    MGWorkload,
)
from repro.workloads.phoronix import PHORONIX_APPS, ReadMostlyWorkload, make_phoronix_suite
from repro.workloads.registry import default_workloads, make_workload
from repro.workloads.tensorflow_sim import TensorFlowWorkload
from repro.workloads.x9 import X9Workload


class TestMicrobenchmarks:
    def test_listing1_parameter_validation(self):
        with pytest.raises(WorkloadError):
            Listing1(element_size=0)

    def test_listing1_clean_eliminates_wa(self, tiny_machine_a):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
            w = Listing1(element_size=1024, num_elements=256, iterations=400, threads=2)
            runs[mode] = w.run(tiny_machine_a, PatchConfig({w.SITE.name: mode})).run
        assert runs[PrestoreMode.CLEAN].write_amplification == pytest.approx(1.0, abs=0.1)
        assert runs[PrestoreMode.NONE].write_amplification > 1.5

    def test_listing2_demote_helps_with_window(self, tiny_machine_b):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
            w = Listing2(reads_before_fence=20, iterations=400)
            runs[mode] = w.run(tiny_machine_b, PatchConfig({w.SITE.name: mode})).run
        assert runs[PrestoreMode.DEMOTE].cycles < runs[PrestoreMode.NONE].cycles

    def test_listing3_clean_is_catastrophic(self, tiny_machine_a):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
            w = Listing3(iterations=1000)
            runs[mode] = w.run(tiny_machine_a, PatchConfig({w.SITE.name: mode})).run
        assert runs[PrestoreMode.CLEAN].cycles > 10 * runs[PrestoreMode.NONE].cycles


class TestNAS:
    @pytest.mark.parametrize("cls", ALL_NAS, ids=lambda c: c.name)
    def test_kernels_run(self, cls, tiny_machine_a):
        workload = cls(grid=8, iterations=1, threads=2)
        result = workload.run(tiny_machine_a, PatchConfig.baseline())
        assert result.run.cycles > 0
        assert result.run.instructions > 0

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            MGWorkload(grid=1)
        with pytest.raises(WorkloadError):
            MGWorkload(flops_per_point=0)

    def test_mg_patch_sites(self):
        names = {s.name for s in MGWorkload().patch_sites()}
        assert names == {"mg.resid", "mg.psinv"}

    def test_ft_cleaning_fftz2_hurts(self, tiny_machine_a):
        base = FTWorkload(grid=12, iterations=1, threads=2).run(
            tiny_machine_a, PatchConfig.baseline()
        )
        bad = FTWorkload(grid=12, iterations=1, threads=2).run(
            tiny_machine_a, PatchConfig({"ft.fftz2": PrestoreMode.CLEAN})
        )
        assert bad.run.cycles_with_drain > 1.2 * base.run.cycles_with_drain

    def test_is_writes_are_scattered(self, tiny_machine_a):
        """IS must show high write amplification (random bucket writes)."""
        result = ISWorkload(grid=12, iterations=1, threads=2).run(
            tiny_machine_a, PatchConfig.baseline()
        )
        assert result.run.write_amplification > 2.0


class TestTensorFlow:
    def test_runs_and_counts_iterations(self, tiny_machine_a):
        w = TensorFlowWorkload(batch_size=4, iterations=2, threads=2, large_tensor_kb=16)
        result = w.run(tiny_machine_a, PatchConfig.baseline())
        assert result.run.work_items == 2 * 2  # iterations x threads

    def test_clean_beats_skip(self, tiny_machine_a):
        runs = {}
        for mode in (PrestoreMode.CLEAN, PrestoreMode.SKIP):
            w = TensorFlowWorkload(batch_size=8, iterations=1, threads=2, large_tensor_kb=32)
            runs[mode] = w.run(tiny_machine_a, PatchConfig({w.SITE.name: mode})).run
        assert (
            runs[PrestoreMode.CLEAN].cycles_with_drain
            <= runs[PrestoreMode.SKIP].cycles_with_drain
        )


class TestX9:
    def test_messages_all_delivered(self, tiny_machine_b):
        w = X9Workload(messages=200)
        result = w.run(tiny_machine_b, PatchConfig.baseline())
        assert result.run.work_items == 200

    def test_demote_reduces_latency(self, tiny_machine_b):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
            w = X9Workload(messages=300)
            runs[mode] = w.run(tiny_machine_b, PatchConfig({w.SITE.name: mode})).run
        assert runs[PrestoreMode.DEMOTE].cycles < runs[PrestoreMode.NONE].cycles


class TestPhoronixAndRegistry:
    def test_suite_covers_table2_rows(self):
        assert len(make_phoronix_suite()) == len(PHORONIX_APPS) == 10

    def test_flavour_validation(self):
        with pytest.raises(WorkloadError):
            ReadMostlyWorkload("x", flavour="gpu")

    def test_read_mostly_is_read_mostly(self, tiny_machine_a):
        w = ReadMostlyWorkload("pytorch", "stream", scale=200)
        result = w.run(tiny_machine_a, PatchConfig.baseline())
        stores = sum(c.writes for c in result.run.cores)
        loads = sum(c.reads for c in result.run.cores)
        assert stores < 0.1 * loads

    def test_make_workload_by_name(self):
        assert make_workload("listing1").name == "listing1"
        assert make_workload("pytorch").name == "pytorch"
        with pytest.raises(WorkloadError):
            make_workload("doom")

    def test_default_workloads_roster(self):
        names = {w.name for w in default_workloads()}
        # The full Table 2 roster: 16 named + 10 Phoronix apps.
        assert "tensorflow" in names and "nas-mg" in names and "pytorch" in names
        assert len(names) == 26
