"""The Machine observer list (generalised from the single tracer slot)."""

import pytest

from repro.core.prestore import PatchConfig
from repro.errors import SimulationError
from repro.workloads.memapi import Program
from repro.workloads.microbench import Listing1


class RecordingObserver:
    def __init__(self):
        self.events = []
        self.attached_to = None
        self.finished_with = None

    def attach(self, machine):
        self.attached_to = machine

    def record(self, core_id, event, instr_index, cycles):
        self.events.append((core_id, event.kind, instr_index))

    def finish(self, machine, result):
        self.finished_with = result


class BareTracer:
    """Only ``record`` — the original Tracer protocol keeps working."""

    def __init__(self):
        self.calls = 0

    def record(self, core_id, event, instr_index, cycles):
        self.calls += 1


class TestObserverList:
    def _program(self, spec, tracer=None):
        program = Program(spec, tracer=tracer)
        Listing1(iterations=50, threads=1).spawn(program, PatchConfig.baseline())
        return program

    def test_no_observers_dispatch_is_empty(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        assert program.machine.observers == ()
        program.run()

    def test_all_observers_see_every_event(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        a, b = RecordingObserver(), RecordingObserver()
        program.machine.attach_observer(a)
        program.machine.attach_observer(b)
        program.run()
        assert a.events
        assert a.events == b.events

    def test_attach_and_finish_hooks_fire(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        observer = RecordingObserver()
        program.machine.attach_observer(observer)
        assert observer.attached_to is program.machine
        result = program.run()
        assert observer.finished_with is result

    def test_bare_record_only_tracer_accepted(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        bare = BareTracer()
        program.machine.attach_observer(bare)
        program.run()
        assert bare.calls > 0

    def test_legacy_tracer_kwarg_still_works(self, tiny_machine_a):
        bare = BareTracer()
        program = self._program(tiny_machine_a, tracer=bare)
        assert program.machine.tracer is bare
        assert bare in program.machine.observers
        program.run()
        assert bare.calls > 0

    def test_tracer_setter_replaces_slot_not_others(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        machine = program.machine
        extra = RecordingObserver()
        machine.attach_observer(extra)
        first, second = BareTracer(), BareTracer()
        machine.tracer = first
        machine.tracer = second
        assert machine.tracer is second
        assert first not in machine.observers
        assert extra in machine.observers

    def test_detach_observer(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        observer = RecordingObserver()
        program.machine.attach_observer(observer)
        program.machine.detach_observer(observer)
        assert observer not in program.machine.observers
        program.run()
        assert observer.events == []

    def test_attach_after_finish_is_an_error(self, tiny_machine_a):
        program = self._program(tiny_machine_a)
        program.run()
        with pytest.raises(SimulationError):
            program.machine.attach_observer(RecordingObserver())
