"""Exit-code contract of ``python -m repro.sanitize``.

0 clean, 1 error diagnostics, 2 missing target, 3 a pass itself failed
to run.  The regression this pins: a target whose import or dynamic run
*raises* used to fall back to the static pass silently and exit 0 — a
raising pass must never report "clean".
"""

from __future__ import annotations

from repro.sanitize.cli import main


def test_clean_target_exits_zero(tmp_path, capsys) -> None:
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0


def test_missing_target_exits_two(tmp_path, capsys) -> None:
    assert main([str(tmp_path / "nope.py")]) == 2


def test_import_failure_exits_three(tmp_path, capsys) -> None:
    target = tmp_path / "explodes_on_import.py"
    target.write_text("raise RuntimeError('boom at import')\n")
    code = main([str(target)])
    assert code == 3
    assert "import failed" in capsys.readouterr().err


def test_dynamic_pass_raise_exits_three(tmp_path, capsys) -> None:
    target = tmp_path / "explodes_dynamically.py"
    target.write_text(
        "def build_program(spec):\n"
        "    raise RuntimeError('boom in build_program')\n"
    )
    code = main([str(target)])
    assert code == 3
    assert "dynamic pass raised" in capsys.readouterr().err


def test_static_only_skips_dynamic_raise(tmp_path, capsys) -> None:
    """--static-only never imports the target, so a raising hook is moot."""
    target = tmp_path / "explodes_dynamically.py"
    target.write_text(
        "def build_program(spec):\n"
        "    raise RuntimeError('boom in build_program')\n"
    )
    assert main(["--static-only", str(target)]) == 0


def test_syntax_error_reported_statically(tmp_path, capsys) -> None:
    """A syntax error is the static pass's finding (exit 1), not a pass
    failure (exit 3): the file *was* checked."""
    target = tmp_path / "bad_syntax.py"
    target.write_text("def broken(:\n")
    assert main([str(target)]) == 1
