"""Unit tests for the workload programming interface (memapi)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, WorkloadError
from repro.sim.event import EventKind
from repro.sim.machine import machine_a
from repro.workloads.memapi import Allocator, Program, Region, ThreadCtx


def _ctx(line=64, seed=5):
    return ThreadCtx(tid=0, allocator=Allocator(line), line_size=line, seed=seed)


class TestAllocator:
    def test_regions_are_disjoint_and_aligned(self):
        alloc = Allocator(64)
        regions = [alloc.alloc(100, f"r{i}") for i in range(50)]
        for region in regions:
            assert region.base % 64 == 0
        spans = sorted((r.base, r.end) for r in regions)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, "regions overlap"

    def test_no_false_sharing(self):
        alloc = Allocator(64)
        a = alloc.alloc(8)
        b = alloc.alloc(8)
        assert a.base // 64 != b.base // 64

    def test_explicit_alignment(self):
        alloc = Allocator(64)
        region = alloc.alloc(100, align=4096)
        assert region.base % 4096 == 0

    def test_rejects_bad_sizes(self):
        alloc = Allocator(64)
        with pytest.raises(AllocationError):
            alloc.alloc(0)
        with pytest.raises(AllocationError):
            alloc.alloc(8, align=3)

    def test_region_of(self):
        alloc = Allocator(64)
        region = alloc.alloc(128, "target")
        assert alloc.region_of(region.base + 5) is region
        assert alloc.region_of(0) is None


class TestRegion:
    def test_addr_bounds_checked(self):
        region = Region(base=1024, size=64, label="r")
        assert region.addr(0) == 1024
        assert region.addr(63) == 1087
        with pytest.raises(AllocationError):
            region.addr(64)
        with pytest.raises(AllocationError):
            region.addr(-1)

    def test_contains(self):
        region = Region(base=1024, size=64, label="r")
        assert 1024 in region and 1087 in region and 1088 not in region


class TestThreadCtx:
    def test_event_provenance(self):
        t = _ctx()
        with t.function("outer", file="a.c", line=1):
            with t.function("inner", file="b.c", line=2):
                ev = t.write(0, 8)
        assert ev.site.function == "inner"
        assert tuple(s.function for s in ev.callchain) == ("outer",)

    def test_sites_are_interned(self):
        t = _ctx()
        with t.function("f", file="a.c", line=1):
            ev1 = t.read(0, 8)
        with t.function("f", file="a.c", line=1):
            ev2 = t.read(0, 8)
        assert ev1.site is ev2.site

    def test_write_block_covers_range_exactly(self):
        t = _ctx()
        events = list(t.write_block(128, 300))
        assert all(ev.kind is EventKind.WRITE for ev in events)
        covered = sorted((ev.addr, ev.addr + ev.size) for ev in events)
        assert covered[0][0] == 128
        assert covered[-1][1] == 428
        for (s1, e1), (s2, e2) in zip(covered, covered[1:]):
            assert e1 == s2

    def test_memcpy_interleaves_reads_and_writes(self):
        t = _ctx()
        events = list(t.memcpy(dst=4096, src=0, size=128))
        kinds = [ev.kind for ev in events]
        assert kinds == [EventKind.READ, EventKind.WRITE] * 2

    def test_nontemporal_flag_propagates(self):
        t = _ctx()
        events = list(t.write_block(0, 128, nontemporal=True))
        assert all(ev.nontemporal for ev in events)

    def test_rng_is_seeded_per_thread(self):
        a = _ctx(seed=1).rng.random()
        b = _ctx(seed=1).rng.random()
        c = _ctx(seed=2).rng.random()
        assert a == b != c


class TestProgram:
    def test_work_items_flow_into_result(self):
        program = Program(machine_a())

        def body(t):
            yield t.compute(10)
            program.add_work(3)

        program.spawn(body)
        result = program.run()
        assert result.work_items == 3

    def test_run_requires_threads(self):
        program = Program(machine_a())
        with pytest.raises(WorkloadError):
            program.run()

    def test_threads_interleave_by_time(self):
        """The slow thread must not run to completion before the fast one."""
        program = Program(machine_a())
        order = []

        def slow(t):
            for i in range(10):
                yield t.compute(1000)
                order.append(("slow", i))

        def fast(t):
            for i in range(10):
                yield t.compute(10)
                order.append(("fast", i))

        program.spawn(slow)
        program.spawn(fast)
        program.run()
        # All fast iterations happen before the second slow iteration.
        slow_second = order.index(("slow", 1))
        fast_positions = [i for i, (who, _) in enumerate(order) if who == "fast"]
        assert all(p < slow_second for p in fast_positions)


@given(sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_allocator_never_overlaps(sizes):
    alloc = Allocator(64)
    regions = [alloc.alloc(size) for size in sizes]
    spans = sorted((r.base, r.end) for r in regions)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
