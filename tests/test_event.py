"""Unit tests for the event model (repro.sim.event)."""

import pytest

from repro.core.prestore import PrestoreOp
from repro.errors import SimulationError
from repro.sim.event import CodeSite, Event, EventKind, Mailbox, UNKNOWN_SITE


class TestEventValidation:
    def test_read_requires_positive_size(self):
        with pytest.raises(SimulationError):
            Event(EventKind.READ, addr=0, size=0)

    def test_write_requires_non_negative_addr(self):
        with pytest.raises(SimulationError):
            Event(EventKind.WRITE, addr=-8, size=8)

    def test_compute_requires_positive_count(self):
        with pytest.raises(SimulationError):
            Event(EventKind.COMPUTE, size=0)

    def test_prestore_requires_op(self):
        with pytest.raises(SimulationError):
            Event(EventKind.PRESTORE, addr=0, size=64)

    def test_only_writes_can_be_nontemporal(self):
        with pytest.raises(SimulationError):
            Event(EventKind.READ, addr=0, size=8, nontemporal=True)

    def test_post_requires_mailbox(self):
        with pytest.raises(SimulationError):
            Event(EventKind.POST, sync_key="k")

    def test_valid_events_construct(self):
        Event(EventKind.READ, addr=64, size=8)
        Event(EventKind.WRITE, addr=64, size=8, nontemporal=True)
        Event(EventKind.PRESTORE, addr=0, size=64, op=PrestoreOp.CLEAN)
        Event(EventKind.FENCE)
        Event(EventKind.WAIT, mailbox=Mailbox(), sync_key=1)


class TestEventProperties:
    def test_fence_semantics(self):
        assert Event(EventKind.FENCE).has_fence_semantics
        assert Event(EventKind.ATOMIC, addr=0, size=8).has_fence_semantics
        assert not Event(EventKind.READ, addr=0, size=8).has_fence_semantics

    def test_load_fence_has_no_store_fence_semantics(self):
        assert not Event(EventKind.FENCE, fence_scope="load").has_fence_semantics

    def test_is_store(self):
        assert Event(EventKind.WRITE, addr=0, size=8).is_store
        assert Event(EventKind.ATOMIC, addr=0, size=8).is_store
        assert not Event(EventKind.READ, addr=0, size=8).is_store

    def test_lines_single(self):
        ev = Event(EventKind.READ, addr=70, size=8)
        assert list(ev.lines(64)) == [1]

    def test_lines_straddles_boundary(self):
        ev = Event(EventKind.WRITE, addr=60, size=8)
        assert list(ev.lines(64)) == [0, 1]

    def test_lines_multi(self):
        ev = Event(EventKind.WRITE, addr=0, size=256)
        assert list(ev.lines(64)) == [0, 1, 2, 3]

    def test_compute_touches_no_lines(self):
        assert list(Event(EventKind.COMPUTE, size=10).lines(64)) == []


class TestCodeSite:
    def test_unique_synthetic_ips(self):
        a = CodeSite(function="f")
        b = CodeSite(function="f")
        assert a.ip != b.ip

    def test_str_contains_location(self):
        site = CodeSite(function="psinv", file="mg.f90", line=614)
        assert "psinv" in str(site) and "mg.f90:614" in str(site)

    def test_unknown_site_exists(self):
        assert UNKNOWN_SITE.function == "<unlabelled>"


class TestMailbox:
    def test_post_and_get(self):
        box = Mailbox()
        assert box.get("k") is None
        box.post("k", 100.0)
        assert box.get("k") == 100.0
        assert "k" in box

    def test_earliest_post_wins(self):
        box = Mailbox()
        box.post("k", 100.0)
        box.post("k", 50.0)
        box.post("k", 200.0)
        assert box.get("k") == 50.0
