"""repro.faults: determinism, crash semantics, recovery, and the identity."""

import functools
import json

import pytest

from repro.core.prestore import PrestoreMode
from repro.faults import (
    CrashPoint,
    FaultPlan,
    KVPersistWorkload,
    LogAppendWorkload,
    PersistentImage,
    ReadFault,
    run_with_faults,
)
from repro.faults.cli import main as faults_main
from repro.runner import Cell, execute_cells
from repro.sim.machine import (
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)

PRESETS = [machine_a, machine_dram, machine_a_cxl, machine_b_fast, machine_b_slow]


def _clean_patches(workload):
    from repro.core.prestore import PatchConfig

    config = PatchConfig.baseline()
    for site in workload.patch_sites():
        config.set_mode(site.name, PrestoreMode.CLEAN)
    return config


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(crash=CrashPoint(at_instruction=5)).is_empty()
        assert not FaultPlan(read_faults=(ReadFault(at_read=3),)).is_empty()

    def test_round_trips_through_dict(self):
        plan = FaultPlan.generate(seed=11, crash_window=(100, 200), read_fault_count=2)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_generate_is_seed_deterministic(self):
        a = FaultPlan.generate(seed=3, crash_window=(10, 99), read_fault_count=3)
        b = FaultPlan.generate(seed=3, crash_window=(10, 99), read_fault_count=3)
        c = FaultPlan.generate(seed=4, crash_window=(10, 99), read_fault_count=3)
        assert a == b
        assert a != c


class TestEmptyPlanIdentity:
    """The acceptance criterion: no faults injected => bit-identical results."""

    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: p.__name__)
    @pytest.mark.parametrize("streams", [True, False], ids=["fast-path", "reference"])
    def test_no_fault_results_bit_identical_on_every_preset(self, preset, streams):
        spec = preset()
        plain = (
            LogAppendWorkload(record_size=256, records=24)
            .run(spec, streams=streams)
            .run.to_json()
        )
        report = run_with_faults(
            LogAppendWorkload(record_size=256, records=24),
            spec,
            FaultPlan(),
            streams=streams,
        )
        assert report.result.to_json() == plain
        assert report.image is None and not report.crashed


class TestCrashDeterminism:
    PLAN = FaultPlan(crash=CrashPoint(at_instruction=120))

    def _cell(self):
        return Cell(
            make_workload=functools.partial(KVPersistWorkload, operations=48),
            spec=machine_a(),
            mode=PrestoreMode.CLEAN,
            seed=9,
            fault_plan=self.PLAN,
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_same_plan_same_seed_bit_identical_at_any_worker_count(self, workers):
        (ref,) = execute_cells([self._cell()], workers=1)
        out = execute_cells([self._cell(), self._cell()], workers=workers)
        assert [o.result_json for o in out] == [ref.result_json] * 2
        report = ref.result.extra["fault_report"]
        assert report["crashed"] is True
        assert report["image_digest"]

    def test_harness_report_json_is_stable(self):
        kwargs = dict(seed=9, patches=_clean_patches(KVPersistWorkload()))
        a = run_with_faults(KVPersistWorkload(operations=48), machine_a(), self.PLAN, **kwargs)
        b = run_with_faults(KVPersistWorkload(operations=48), machine_a(), self.PLAN, **kwargs)
        assert a.to_json() == b.to_json()
        assert a.image.digest() == b.image.digest()

    def test_image_round_trips_through_dict(self):
        report = run_with_faults(
            KVPersistWorkload(operations=48),
            machine_a(),
            self.PLAN,
            seed=9,
        )
        image = PersistentImage.from_dict(report.image.to_dict())
        assert image.to_json() == report.image.to_json()
        assert image.digest() == report.image.digest()


class TestRecovery:
    def _run(self, workload, mode, plan, spec=None):
        from repro.core.prestore import PatchConfig

        config = PatchConfig.baseline()
        for site in workload.patch_sites():
            config.set_mode(site.name, mode)
        return run_with_faults(workload, spec or machine_a(), plan, patches=config, seed=5)

    def test_kv_clean_protocol_survives_any_crash(self):
        report = self._run(
            KVPersistWorkload(operations=64),
            PrestoreMode.CLEAN,
            FaultPlan(crash=CrashPoint(at_instruction=150)),
        )
        assert report.crashed
        assert report.recovery["ok"], report.recovery

    def test_kv_baseline_loses_acked_keys(self):
        report = self._run(
            KVPersistWorkload(operations=64),
            PrestoreMode.NONE,
            FaultPlan(crash=CrashPoint(at_instruction=100)),
        )
        assert report.crashed
        assert not report.recovery["ok"]
        assert report.recovery["lost_count"] > 0
        assert report.recovery["lost_keys"]

    def test_log_prefix_durability_under_clean(self):
        report = self._run(
            LogAppendWorkload(records=60),
            PrestoreMode.CLEAN,
            FaultPlan(crash=CrashPoint(at_instruction=200)),
        )
        assert report.crashed
        recovery = report.recovery
        assert recovery["ok"], recovery
        # Everything acked before the crash is the durable prefix.
        assert recovery["durable_prefix"] == recovery["acked"]

    def test_log_baseline_crash_truncates_with_holes(self):
        report = self._run(
            LogAppendWorkload(records=60),
            PrestoreMode.NONE,
            FaultPlan(crash=CrashPoint(at_instruction=80)),
        )
        assert report.crashed
        assert not report.recovery["ok"]
        assert report.recovery["lost_count"] > 0

    def test_skip_mode_is_durable_under_adr(self):
        # NT stores are accepted by the device before the fence, but they
        # sit in open write-combiner entries: durable exactly because ADR
        # flushes the combiner on power fail (the paper's Table 1 setup).
        report = self._run(
            KVPersistWorkload(operations=64),
            PrestoreMode.SKIP,
            FaultPlan(crash=CrashPoint(at_instruction=150)),
        )
        assert report.crashed
        assert report.recovery["ok"], report.recovery

    def test_skip_mode_without_adr_strands_accepted_bytes(self):
        # Media-only persistence: sfence ordered the NT stores into the
        # device, but open combiner entries never reached the medium.
        report = self._run(
            KVPersistWorkload(operations=64),
            PrestoreMode.SKIP,
            FaultPlan(crash=CrashPoint(at_instruction=150), combiner_persistent=False),
        )
        assert report.crashed
        assert report.recovery["lost_count"] > 0

    def test_no_adr_strands_open_combiner_entries(self):
        # Media-only persistence: an acked line still sitting in an open
        # write-combiner entry does not survive, so the durable count can
        # only shrink relative to the ADR image.
        plan_adr = FaultPlan(crash=CrashPoint(at_instruction=150))
        plan_raw = FaultPlan(
            crash=CrashPoint(at_instruction=150), combiner_persistent=False
        )
        adr = self._run(KVPersistWorkload(operations=64), PrestoreMode.CLEAN, plan_adr)
        raw = self._run(KVPersistWorkload(operations=64), PrestoreMode.CLEAN, plan_raw)
        assert len(raw.image.lost_lines()) >= len(adr.image.lost_lines())


class TestDeviceFaults:
    def test_read_faults_and_degraded_phases_are_counted(self):
        plan = FaultPlan(
            read_faults=(ReadFault(at_read=1), ReadFault(at_read=3)),
            bandwidth_phases=FaultPlan.generate(
                seed=2, phase_count=1, phase_window=(0, 10_000), phase_length=50_000
            ).bandwidth_phases,
        )
        report = run_with_faults(
            KVPersistWorkload(operations=48), machine_a(), plan, seed=5
        )
        assert not report.crashed
        assert report.read_faults_injected >= 1

    def test_read_fault_latency_slows_the_run(self):
        # Needs *demand* reads: RFO fills from store drains deliberately
        # don't stall the core, so a write-only workload would hide the
        # injected latency.  YCSB mix A is half GETs.
        from repro.workloads.kv import CLHTWorkload, YCSBSpec

        def reader():
            return CLHTWorkload(
                YCSBSpec(mix="A", num_keys=256, operations=300, value_size=256)
            )

        base = run_with_faults(
            reader(),
            machine_a(),
            FaultPlan(read_faults=(ReadFault(at_read=10**9),)),
            seed=5,
        )
        # Read indices are 1-based; blanket the first 200 reads so some
        # land on core-stalling demand reads.
        faults = tuple(
            ReadFault(at_read=i, extra_latency=2000.0) for i in range(1, 201)
        )
        slow = run_with_faults(
            reader(), machine_a(), FaultPlan(read_faults=faults), seed=5
        )
        assert slow.read_faults_injected > 0
        assert slow.result.cycles > base.result.cycles


class TestCLI:
    def test_run_reports_json(self, capsys):
        rc = faults_main(
            ["run", "--workload", "kvpersist", "--mode", "clean", "--crash-frac", "0.5"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["crashed"] is True
        assert doc["recovery"]["ok"] is True
        assert doc["image_summary"]["digest"]

    def test_run_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            faults_main(["run", "--machine", "pdp11"])


class TestExperiment:
    def test_faults_window_is_registered_and_checks(self):
        from repro.experiments import get

        result = get("faults-window").run_checked(fast=True, seed=1234)
        assert not any(n.startswith("SHAPE CHECK FAILED") for n in result.notes), result.notes
        by_mode = {row.config["mode"]: row for row in result.rows}
        assert by_mode["none"].metric("lost_acked") > 0
        assert by_mode["clean"].metric("lost_acked") == 0
        assert by_mode["skip"].metric("lost_acked") == 0
