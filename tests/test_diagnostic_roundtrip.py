"""Serialisation round-trips for the crashcheck surface.

``Diagnostic`` objects carrying ``crashcheck.*`` rules must survive the
to_dict/from_dict cycle byte-identically (they ride inside archived
``RunResult`` JSON), and ``DurabilityLog.to_dict`` must preserve the
pinned per-line versions the static/dynamic alignment depends on.
"""

from __future__ import annotations

import json

from repro.errors import Diagnostic
from repro.faults.recovery import DurabilityLog
from repro.sim.event import CodeSite


class _VersionedDevice:
    """Duck-typed fault device: just the line_versions the log snapshots."""

    def __init__(self, versions) -> None:
        self.line_versions = versions


def test_crashcheck_diagnostic_round_trip() -> None:
    site = CodeSite(function="kv_put", file="kvpersist.c", line=7)
    related = CodeSite(function="log_append", file="logappend.c", line=5)
    for rule, severity in (
        ("crashcheck.acked-before-persist", "error"),
        ("crashcheck.missing-clwb", "error"),
        ("crashcheck.fence-scope-too-narrow", "warning"),
        ("crashcheck.redundant-flush", "warning"),
        ("crashcheck.media-domain", "info"),
    ):
        diag = Diagnostic(
            rule=rule,
            severity=severity,
            message=f"probe for {rule}",
            site=site,
            related=(related,),
            addr=0x1000,
            cache_line=64,
            core_id=1,
            instr_index=42,
            count=3,
        )
        restored = Diagnostic.from_dict(diag.to_dict())
        assert restored == diag
        # And through an actual JSON boundary, as RunResult archives do.
        assert Diagnostic.from_dict(json.loads(json.dumps(diag.to_dict()))) == diag


def test_diagnostic_round_trip_without_site() -> None:
    diag = Diagnostic(
        rule="crashcheck.approximate-indices",
        severity="info",
        message="thread-major extraction",
        site=None,
    )
    assert Diagnostic.from_dict(json.loads(json.dumps(diag.to_dict()))) == diag


def test_durability_log_to_dict_pins_versions() -> None:
    log = DurabilityLog()
    device = _VersionedDevice({4: 2, 5: 1})
    log.ack("rec0", [4, 5], device)
    device.line_versions[4] = 3  # later rewrite must not change the snapshot
    log.ack("rec1", [4], device)
    doc = log.to_dict()
    assert json.loads(json.dumps(doc)) == doc
    first, second = doc["records"]
    assert first == {"index": 0, "key": "rec0", "lines": [4, 5], "versions": [[4, 2], [5, 1]]}
    assert second["versions"] == [[4, 3]]


def test_durability_log_to_dict_without_device() -> None:
    log = DurabilityLog()
    log.ack("rec0", [7])
    (record,) = log.to_dict()["records"]
    assert record["versions"] == [[7, 0]]  # "latest" sentinel under a plain device
