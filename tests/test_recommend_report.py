"""Unit tests for the recommendation engine and paper-style reports."""

import math


from repro.core.prestore import PrestoreMode
from repro.dirtbuster.contexts import SequentialContext, SequentialitySummary
from repro.dirtbuster.distances import DistanceStats
from repro.dirtbuster.fences import FenceProximity
from repro.dirtbuster.instrument import BucketRow, FunctionPatterns
from repro.dirtbuster.recommend import Recommender, Thresholds
from repro.dirtbuster.report import format_distance, format_size, render_recommendation


def _patterns(
    pct_seq=1.0,
    writes=1000,
    rewrite=math.inf,
    reread=math.inf,
    fence_min=math.inf,
    fence_cov=0.0,
):
    ctx = SequentialContext(start=0, end=int(4096 * pct_seq) or 1, writes=int(writes * pct_seq) or 1)
    seq = SequentialitySummary(
        function="f",
        total_writes=writes,
        sequential_writes=int(writes * pct_seq),
        contexts=[ctx],
    )
    fences = FenceProximity(function="f", writes=writes)
    fences.writes_before_fence = int(writes * fence_cov)
    fences.min_distance = fence_min
    dist = DistanceStats(function="f")
    if not math.isinf(rewrite):
        dist.rewrite_samples, dist.rewrite_sum = 10, rewrite * 10
    if not math.isinf(reread):
        dist.reread_samples, dist.reread_sum = 10, reread * 10
    return FunctionPatterns(
        function="f",
        file="f.c",
        line=42,
        sequentiality=seq,
        fences=fences,
        distances=dist,
        buckets=[BucketRow(size=4096, share=1.0, reread=reread, rewrite=rewrite)],
    )


class TestDecisionProcedure:
    """The Section 6.2.3 branches, one test each."""

    def setup_method(self):
        self.rec = Recommender(Thresholds())

    def test_no_pattern_means_no_prestore(self):
        verdict = self.rec.recommend(_patterns(pct_seq=0.05))
        assert verdict.choice is PrestoreMode.NONE
        assert "neither sequential" in verdict.rationale

    def test_hot_rewrite_means_no_prestore(self):
        verdict = self.rec.recommend(_patterns(rewrite=50))
        assert verdict.choice is PrestoreMode.NONE
        assert "rewritten" in verdict.rationale

    def test_rewritten_before_fence_means_demote(self):
        verdict = self.rec.recommend(
            _patterns(rewrite=5000, fence_min=20, fence_cov=0.9)
        )
        assert verdict.choice is PrestoreMode.DEMOTE

    def test_rewritten_without_fence_falls_through(self):
        verdict = self.rec.recommend(_patterns(rewrite=5000, reread=100))
        assert verdict.choice is PrestoreMode.CLEAN

    def test_reread_means_clean(self):
        verdict = self.rec.recommend(_patterns(reread=23_800))
        assert verdict.choice is PrestoreMode.CLEAN

    def test_no_reuse_means_skip_with_clean_fallback(self):
        verdict = self.rec.recommend(_patterns())
        assert verdict.choice is PrestoreMode.SKIP
        assert verdict.fallback is PrestoreMode.CLEAN

    def test_reuse_beyond_horizon_is_no_reuse(self):
        verdict = self.rec.recommend(_patterns(reread=10_000_000))
        assert verdict.choice is PrestoreMode.SKIP

    def test_fence_pattern_alone_qualifies(self):
        verdict = self.rec.recommend(
            _patterns(pct_seq=0.0, fence_min=10, fence_cov=0.9)
        )
        assert verdict.wants_prestore

    def test_noise_floor(self):
        verdict = self.rec.recommend(_patterns(writes=5))
        assert verdict.choice is PrestoreMode.NONE


class TestReportFormatting:
    def test_format_size(self):
        assert format_size(240) == "240B"
        assert format_size(2150) == "2.1KB"
        assert format_size(16_986_931) == "16.2MB"

    def test_format_distance(self):
        assert format_distance(2.0) == "2"
        assert format_distance(23_800.0) == "23.8K"
        assert format_distance(2_500_000.0) == "2.5M"
        assert format_distance(math.inf) == "inf"

    def test_render_matches_paper_shape(self):
        rec = Recommender().recommend(_patterns(reread=23_800))
        text = render_recommendation(rec)
        assert "f()" in text
        assert "Location: f.c line 42" in text
        assert "Perc. Seq. Writes: 100%" in text
        assert "Size: 4.0KB" in text
        assert "re-read 23.8K" in text
        assert "re-write inf" in text
        assert "Pre-store choice: clean" in text
