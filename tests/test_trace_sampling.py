"""Unit tests for tracing and the perf-style sampler."""

import pytest

from repro.dirtbuster.sampling import SampleProfile
from repro.dirtbuster.trace import FullTracer, SamplingTracer
from repro.errors import AnalysisError, TraceError
from repro.sim.event import CodeSite, Event, EventKind


def _write(function="f", addr=0, size=8):
    return Event(EventKind.WRITE, addr=addr, size=size, site=CodeSite(function=function))


def _read(function="f", addr=0, size=8):
    return Event(EventKind.READ, addr=addr, size=size, site=CodeSite(function=function))


class TestSamplingTracer:
    def test_rejects_bad_period(self):
        with pytest.raises(TraceError):
            SamplingTracer(period=0)

    def test_samples_proportional_to_cycles(self):
        tracer = SamplingTracer(period=10)
        # 100 cycles of writes and 900 cycles of compute.
        for i in range(100):
            tracer.record(0, _write(), i, cycles=1.0)
        tracer.record(0, Event(EventKind.COMPUTE, size=1800), 100, cycles=900.0)
        profile = SampleProfile.from_tracer(tracer)
        assert profile.total_samples == pytest.approx(100, abs=2)
        assert profile.application_store_fraction == pytest.approx(0.10, abs=0.02)

    def test_expensive_event_can_take_multiple_samples(self):
        tracer = SamplingTracer(period=10)
        tracer.record(0, _write(), 0, cycles=55.0)
        assert len(tracer.samples) == 5

    def test_zero_cycle_events_unsampled(self):
        tracer = SamplingTracer(period=10)
        for i in range(100):
            tracer.record(0, _write(), i, cycles=0.0)
        assert len(tracer) == 0


class TestFullTracer:
    def test_records_selected_functions_only(self):
        tracer = FullTracer(functions={"hot"})
        tracer.record(0, _write("hot"), 0)
        tracer.record(0, _write("cold"), 1)
        assert len(tracer.records) == 1
        assert tracer.records[0].function == "hot"

    def test_callchain_selection(self):
        tracer = FullTracer(functions={"caller"})
        ev = Event(
            EventKind.WRITE,
            addr=0,
            size=8,
            site=CodeSite(function="memcpy"),
            callchain=(CodeSite(function="caller"),),
        )
        tracer.record(0, ev, 0)
        assert len(tracer.records) == 1

    def test_fences_always_recorded(self):
        tracer = FullTracer(functions={"hot"})
        tracer.record(0, Event(EventKind.FENCE, site=CodeSite(function="pthread_lock")), 0)
        tracer.record(0, Event(EventKind.ATOMIC, addr=0, size=8, site=CodeSite(function="x")), 1)
        assert len(tracer.records) == 2

    def test_compute_never_recorded(self):
        tracer = FullTracer()
        tracer.record(0, Event(EventKind.COMPUTE, size=5), 0)
        assert len(tracer.records) == 0

    def test_per_core_grouping(self):
        tracer = FullTracer()
        tracer.record(0, _write(), 0)
        tracer.record(1, _write(), 1)
        tracer.record(0, _read(), 2)
        groups = tracer.per_core()
        assert len(groups[0]) == 2 and len(groups[1]) == 1


class TestSampleProfile:
    def test_empty_profile_rejected(self):
        with pytest.raises(AnalysisError):
            SampleProfile([], other_samples=0)

    def test_function_ranking_by_stores(self):
        tracer = SamplingTracer(period=1)
        for _ in range(10):
            tracer.record(0, _write("writer"), 0, cycles=1.0)
        for _ in range(100):
            tracer.record(0, _read("reader"), 0, cycles=1.0)
        tracer.record(0, _write("minor"), 0, cycles=1.0)
        profile = SampleProfile.from_tracer(tracer)
        chosen = profile.write_intensive_functions(share_of_stores=0.5)
        assert [p.function for p in chosen] == ["writer"]

    def test_atomics_count_as_store_time_but_not_ranking(self):
        tracer = SamplingTracer(period=1)
        atomic = Event(EventKind.ATOMIC, addr=0, size=8, site=CodeSite(function="lock"))
        for _ in range(50):
            tracer.record(0, atomic, 0, cycles=1.0)
        for _ in range(10):
            tracer.record(0, _write("writer"), 0, cycles=1.0)
        profile = SampleProfile.from_tracer(tracer)
        # Application-level: atomics are store time.
        assert profile.application_store_fraction == pytest.approx(1.0)
        # Function ranking: the lock's atomics do not outrank the writer.
        chosen = profile.write_intensive_functions(share_of_stores=0.5)
        assert [p.function for p in chosen] == ["writer"]

    def test_callchain_grouping(self):
        tracer = SamplingTracer(period=1)
        ev = Event(
            EventKind.WRITE,
            addr=0,
            size=8,
            site=CodeSite(function="memcpy"),
            callchain=(CodeSite(function="put"),),
        )
        for _ in range(5):
            tracer.record(0, ev, 0, cycles=1.0)
        profile = SampleProfile.from_tracer(tracer)
        chains = profile.function("memcpy").top_callchains()
        assert chains[0][0] == ("put",)
