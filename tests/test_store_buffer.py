"""Unit tests for store buffers and the two visibility disciplines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.store_buffer import StoreBuffer


def _vis(latency=100):
    return lambda line: latency


class TestConstruction:
    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            StoreBuffer(model="sc")

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            StoreBuffer(model="tso", capacity=0)


class TestTSO:
    def test_store_starts_visibility_immediately(self):
        sb = StoreBuffer("tso")
        sb.write(1, now=0.0, visibility=_vis(100))
        assert sb.visibility_of(1) == pytest.approx(100.0)

    def test_fence_finds_stores_visible(self):
        sb = StoreBuffer("tso")
        sb.write(1, now=0.0, visibility=_vis(100))
        done = sb.drain(now=500.0, visibility=_vis(100))
        assert done == pytest.approx(500.0)

    def test_visibility_retires_in_order(self):
        sb = StoreBuffer("tso")
        sb.write(1, now=0.0, visibility=_vis(100))
        sb.write(2, now=1.0, visibility=_vis(10))
        assert sb.visibility_of(2) >= sb.visibility_of(1)

    def test_prune_frees_slots(self):
        sb = StoreBuffer("tso", capacity=4)
        for line in range(4):
            sb.write(line, now=float(line), visibility=_vis(10))
        # Far in the future all entries are visible: writing prunes them.
        sb.write(99, now=1000.0, visibility=_vis(10))
        assert sb.occupancy() == 1


class TestWeak:
    def test_stores_park_until_fence(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis(100))
        assert sb._pending[1] is None  # parked: no round trip yet
        assert sb.visibility_of(1) == float("inf")

    def test_fence_pays_visibility(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis(100))
        done = sb.drain(now=50.0, visibility=_vis(100))
        assert done == pytest.approx(150.0)
        assert sb.occupancy() == 0

    def test_demote_starts_visibility_early(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis(100))
        assert sb.demote(1, now=0.0, visibility=_vis(100)) is True
        done = sb.drain(now=100.0, visibility=_vis(100))
        assert done == pytest.approx(100.0)  # already visible at the fence

    def test_demote_missing_line_returns_false(self):
        sb = StoreBuffer("weak")
        assert sb.demote(42, now=0.0, visibility=_vis()) is False

    def test_demote_all(self):
        sb = StoreBuffer("weak")
        for line in range(5):
            sb.write(line, now=0.0, visibility=_vis())
        assert sb.demote_all(now=0.0, visibility=_vis()) == 5

    def test_demote_all_counts_in_stats(self):
        # Regression: bulk demotes used to vanish from demotes_started.
        sb = StoreBuffer("weak")
        for line in range(4):
            sb.write(line, now=0.0, visibility=_vis())
        sb.demote(0, now=0.0, visibility=_vis())
        assert sb.demote_all(now=1.0, visibility=_vis()) == 3  # 0 already started
        assert sb.stats.demotes_started == 4
        # Nothing parked: another sweep starts (and counts) nothing.
        assert sb.demote_all(now=2.0, visibility=_vis()) == 0
        assert sb.stats.demotes_started == 4

    def test_coalescing_same_line(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis())
        sb.write(1, now=1.0, visibility=_vis())
        assert sb.occupancy() == 1
        assert sb.stats.coalesced == 1

    def test_overflow_forces_oldest_visible(self):
        sb = StoreBuffer("weak", capacity=2)
        sb.write(1, now=0.0, visibility=_vis(100))
        sb.write(2, now=1.0, visibility=_vis(100))
        stall = sb.write(3, now=2.0, visibility=_vis(100))
        assert stall > 0
        assert sb.stats.overflow_drains == 1
        assert 1 not in sb._pending

    def test_evict_line_forgets_entry(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis())
        sb.evict_line(1)
        assert not sb.contains(1)

    def test_forwarding_check(self):
        sb = StoreBuffer("weak")
        sb.write(1, now=0.0, visibility=_vis())
        assert sb.contains(1)
        assert not sb.contains(2)


@given(
    model=st.sampled_from(["tso", "weak"]),
    lines=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80),
)
@settings(max_examples=60, deadline=None)
def test_drain_completes_at_or_after_now(model, lines):
    """Property: a fence never completes in the past, and empties the buffer."""
    sb = StoreBuffer(model, capacity=16)
    now = 0.0
    for line in lines:
        now += 1.0
        now += sb.write(line, now=now, visibility=_vis(50))
    done = sb.drain(now=now, visibility=_vis(50))
    assert done >= now
    assert sb.occupancy() == 0
