"""The ``python -m repro.obs`` command-line interface."""

import json

import pytest

from repro.obs.cli import main, render_timeline
from repro.obs.collector import ObsCollector
from repro.workloads.microbench import Listing1


class TestRunCommand:
    def test_run_writes_valid_trace_and_json(self, tmp_path, capsys):
        trace_path = tmp_path / "out.trace.json"
        json_path = tmp_path / "out.json"
        code = main(
            [
                "run",
                "--workload", "listing1",
                "--seed", "7",
                "--interval", "500",
                "--trace", str(trace_path),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        result = json.loads(json_path.read_text())
        assert result["timeline"]["samples"]
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "WriteAmplification" in out

    def test_run_with_mode_and_profile(self, tmp_path, capsys):
        code = main(
            ["run", "--workload", "listing1", "--mode", "clean", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sim.dispatch" in out  # profiler report reached stdout

    def test_unknown_workload_errors(self):
        with pytest.raises(Exception):
            main(["run", "--workload", "no-such-workload"])


class TestSelfCheck:
    def test_self_check_subcommand_passes(self, capsys):
        assert main(["self-check"]) == 0
        assert "self-check OK" in capsys.readouterr().out

    def test_self_check_flag_alias(self, capsys):
        assert main(["--self-check"]) == 0
        assert "self-check OK" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out


class TestRenderTimeline:
    def test_renders_one_row_per_signal(self, tiny_machine_a):
        collector = ObsCollector(interval=200.0, trace=False)
        Listing1(iterations=200).run(tiny_machine_a, seed=3, obs=collector)
        art = render_timeline(collector.timeline, width=40)
        assert "write bandwidth" in art
        assert "running WA" in art
        # Sparklines are bounded by the requested width.
        for line in art.splitlines()[1:]:
            assert len(line.split("|")[1]) <= 40

    def test_empty_timeline_renders_placeholder(self):
        from repro.obs.timeline import Timeline

        assert "empty" in render_timeline(Timeline(interval=1.0))
