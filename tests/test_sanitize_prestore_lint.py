"""Pre-store misuse detector tests: the four lint rules."""

from repro.core.prestore import PatchConfig, PrestoreMode, PrestoreOp
from repro.sanitize import sanitize
from repro.sim.machine import machine_a
from repro.workloads.memapi import Program
from repro.workloads.microbench import Listing1, Listing3


def _prestore_rules(diagnostics):
    return [d.rule for d in diagnostics if d.rule.startswith("prestore.")]


def _run_body(spec, body):
    program = Program(spec, sanitize=True)
    program.spawn(body)
    return program.run().diagnostics


class TestHotRewrite:
    def test_listing3_with_clean_is_flagged(self):
        """Cleaning the constantly-rewritten line is the Listing 3
        anti-pattern: every rewrite becomes a memory write."""
        patches = PatchConfig()
        patches.set_mode(Listing3.SITE.name, PrestoreMode.CLEAN)
        diagnostics = sanitize(Listing3(iterations=2000), machine_a(), patches=patches)
        hot = [d for d in diagnostics if d.rule == "prestore.hot-rewrite"]
        assert hot, "Listing 3 + clean must be flagged"
        assert hot[0].severity == "error"
        assert hot[0].count >= 4
        assert hot[0].site is not None and hot[0].site.function == "listing3_loop"

    def test_listing1_with_clean_is_not_flagged(self):
        """Listing 1 rewrites random elements far apart — exactly what the
        clean pre-store is for; it must pass the same gate."""
        patches = PatchConfig()
        patches.set_mode(Listing1.SITE.name, PrestoreMode.CLEAN)
        diagnostics = sanitize(
            Listing1(iterations=400, num_elements=256), machine_a(), patches=patches
        )
        assert _prestore_rules(diagnostics) == []

    def test_listing3_baseline_is_clean(self):
        diagnostics = sanitize(Listing3(iterations=2000), machine_a())
        assert _prestore_rules(diagnostics) == []


class TestDemoteAfterFence:
    def test_demote_issued_after_fence_is_flagged(self):
        def body(t):
            region = t.alloc(128)
            yield t.write(region.base, 64)
            yield t.fence()
            # Too late: the fence already forced the store visible.
            yield t.prestore(region.base, 64, PrestoreOp.DEMOTE)

        diagnostics = _run_body(machine_a(), body)
        assert "prestore.demote-after-fence" in _prestore_rules(diagnostics)

    def test_demote_before_fence_is_clean(self):
        def body(t):
            region = t.alloc(128)
            yield t.write(region.base, 64)
            yield t.prestore(region.base, 64, PrestoreOp.DEMOTE)
            yield t.fence()

        diagnostics = _run_body(machine_a(), body)
        assert _prestore_rules(diagnostics) == []


class TestUnwritten:
    def test_prestore_of_unwritten_region_is_flagged(self):
        def body(t):
            region = t.alloc(256)
            yield t.read(region.base, 8)
            yield t.prestore(region.base, 256, PrestoreOp.CLEAN)

        diagnostics = _run_body(machine_a(), body)
        unwritten = [d for d in diagnostics if d.rule == "prestore.unwritten"]
        assert unwritten and unwritten[0].severity == "warning"


class TestSkipReread:
    def test_rereading_nontemporal_data_is_flagged(self):
        def body(t):
            region = t.alloc(16 * 64)
            for i in range(8):
                addr = region.addr(i * 64)
                yield t.write(addr, 64, nontemporal=True)
                yield t.read(addr, 8)  # pays device latency every time

        diagnostics = _run_body(machine_a(), body)
        reread = [d for d in diagnostics if d.rule == "prestore.skip-reread"]
        assert reread and reread[0].severity == "warning"
        assert reread[0].count >= 4

    def test_writeonly_nontemporal_stream_is_clean(self):
        def body(t):
            region = t.alloc(16 * 64)
            for i in range(8):
                yield t.write(region.addr(i * 64), 64, nontemporal=True)

        diagnostics = _run_body(machine_a(), body)
        assert _prestore_rules(diagnostics) == []
