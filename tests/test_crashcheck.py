"""repro.crashcheck: the static verifier's model against the simulator.

The load-bearing properties: extracted instruction indices are bit-exact
against the dynamic fault injector (single-threaded), each pre-store
mode classifies as the protocol semantics dictate, and the protocol
rules (missing fence, narrow fence, redundant flush) fire on the exact
shapes they describe.
"""

from __future__ import annotations

import json
from typing import Iterator, Sequence

import pytest

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode, PrestoreOp
from repro.crashcheck import check_workload, extract_ir, patches_for
from repro.crashcheck.verify import GUARANTEED, ORDERING, POSSIBLY_LOST
from repro.errors import Diagnostic
from repro.faults.harness import run_with_faults
from repro.faults.plan import FaultPlan
from repro.faults.recovery import DurabilityLog
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Program, ThreadCtx


def _small_kv(**kwargs):
    from repro.faults.workloads import KVPersistWorkload

    params = dict(keys=8, value_size=256, operations=12)
    params.update(kwargs)
    return KVPersistWorkload(**params)


def _small_log():
    from repro.faults.workloads import LogAppendWorkload

    return LogAppendWorkload(record_size=256, records=12)


class ProtocolProbe(Workload):
    """One write + configurable persist/fence tail, then one ack.

    ``fence`` is "full", "load", or None; ``double_clean`` issues the
    clean twice (the redundant-flush shape).
    """

    name = "protocol-probe"

    def __init__(self, fence: "str | None" = "full", double_clean: bool = False) -> None:
        self.fence = fence
        self.double_clean = double_clean
        self.durability_log = DurabilityLog()

    def patch_sites(self) -> Sequence[PatchSite]:
        return ()

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        program.spawn(self._body, program)

    def _body(self, t: ThreadCtx, program: Program) -> Iterator[Event]:
        region = t.alloc(t.line_size, label="probe")
        addr = region.addr(0)
        yield t.write(addr, t.line_size)
        yield t.prestore(addr, t.line_size, PrestoreOp.CLEAN)
        if self.double_clean:
            yield t.prestore(addr, t.line_size, PrestoreOp.CLEAN)
        if self.fence == "full":
            yield t.fence()
        elif self.fence == "load":
            yield t.fence(scope="load")
        self.durability_log.ack("op", [addr // t.line_size], program.machine.device)
        program.add_work(1)


# -- index exactness against the dynamic injector -------------------------------


def test_ack_boundaries_match_dynamic_log(tiny_machine_a) -> None:
    """A crash planned at a static boundary sees exactly the acks the IR
    predicts before it — the alignment the whole differential rests on."""
    static = check_workload(_small_kv(), tiny_machine_a, mode=PrestoreMode.CLEAN)
    assert static.exact_indices
    target = static.acks[len(static.acks) // 2]
    workload = _small_kv()
    plan = FaultPlan.crash_at(target.boundary)
    report = run_with_faults(
        workload, tiny_machine_a, plan, patches=patches_for(workload, PrestoreMode.CLEAN)
    )
    assert report.crashed
    records = workload.durability_log.records
    expected = [a for a in static.acks if a.boundary <= (report.crash_instruction or 0)]
    assert len(records) == len(expected)
    assert [r.key for r in records] == [a.key for a in expected]


def test_extracted_versions_match_injector(tiny_machine_a) -> None:
    """Static acks pin the same per-line store versions a faulted run's
    FaultDevice records."""
    workload = _small_kv()
    ir = extract_ir(workload, tiny_machine_a, patches=patches_for(workload, PrestoreMode.NONE))
    dynamic = _small_kv()
    plan = FaultPlan.crash_at(ir.instr_total + 1)  # never fires: full run
    run_with_faults(dynamic, tiny_machine_a, plan, patches=patches_for(dynamic, PrestoreMode.NONE))
    static_records = [a.record for a in ir.acks]
    dynamic_records = dynamic.durability_log.records
    assert len(static_records) == len(dynamic_records)
    for ours, theirs in zip(static_records, dynamic_records):
        assert ours.key == theirs.key
        assert ours.lines == theirs.lines
        assert ours.versions == theirs.versions


# -- per-mode classification ------------------------------------------------------


@pytest.mark.parametrize("factory", [_small_kv, _small_log])
def test_mode_classifications(tiny_machine_a, factory) -> None:
    expectations = {
        PrestoreMode.NONE: (POSSIBLY_LOST, "crashcheck.acked-before-persist"),
        PrestoreMode.CLEAN: (GUARANTEED, None),
        PrestoreMode.DEMOTE: (POSSIBLY_LOST, "crashcheck.missing-clwb"),
        PrestoreMode.SKIP: (GUARANTEED, None),
    }
    for mode, (status, rule) in expectations.items():
        report = check_workload(factory(), tiny_machine_a, mode=mode)
        assert report.acks, mode
        assert all(a.status == status for a in report.acks), mode
        if rule is None:
            assert not report.has_errors(), mode
        else:
            assert any(
                d.rule == rule and d.severity == "error" for d in report.diagnostics
            ), mode


def test_demote_flags_not_durable(tiny_machine_a) -> None:
    report = check_workload(_small_kv(), tiny_machine_a, mode=PrestoreMode.DEMOTE)
    rules = {d.rule for d in report.diagnostics}
    assert "crashcheck.demote-not-durable" in rules


def test_media_only_domain(tiny_machine_a) -> None:
    """Without ADR every ack is possibly-lost with a window open to the
    program end, even under the safe protocol."""
    report = check_workload(_small_kv(), tiny_machine_a, mode=PrestoreMode.CLEAN, adr=False)
    assert all(a.status == POSSIBLY_LOST for a in report.acks)
    assert all(a.window is not None and a.window[1] is None for a in report.acks)
    assert any(d.rule == "crashcheck.media-domain" for d in report.diagnostics)


def test_vulnerable_windows_cover_boundary(tiny_machine_a) -> None:
    report = check_workload(_small_kv(), tiny_machine_a, mode=PrestoreMode.NONE)
    for ack in report.vulnerable():
        assert ack.window_contains(ack.boundary)
        assert not ack.window_contains(ack.boundary - 1)


# -- protocol rules on the exact shapes they describe ------------------------------


def test_missing_fence_is_ordering_violation(tiny_machine_a) -> None:
    report = check_workload(ProtocolProbe(fence=None), tiny_machine_a)
    (ack,) = report.acks
    assert ack.status == ORDERING
    assert "crashcheck.missing-fence" in ack.rules
    assert not report.has_errors()  # warning: the simulator can't lose it


def test_load_fence_scope_too_narrow(tiny_machine_a) -> None:
    report = check_workload(ProtocolProbe(fence="load"), tiny_machine_a)
    (ack,) = report.acks
    assert ack.status == ORDERING
    assert "crashcheck.fence-scope-too-narrow" in ack.rules
    assert any(
        d.rule == "crashcheck.fence-scope-too-narrow" and d.severity == "warning"
        for d in report.diagnostics
    )


def test_full_fence_is_guaranteed(tiny_machine_a) -> None:
    report = check_workload(ProtocolProbe(fence="full"), tiny_machine_a)
    (ack,) = report.acks
    assert ack.status == GUARANTEED
    assert not report.diagnostics


def test_redundant_flush_reported(tiny_machine_a) -> None:
    report = check_workload(ProtocolProbe(fence="full", double_clean=True), tiny_machine_a)
    (ack,) = report.acks
    assert ack.status == GUARANTEED  # still correct, just wasteful
    assert any(d.rule == "crashcheck.redundant-flush" for d in report.diagnostics)


# -- serialisation and the stream vocabulary ---------------------------------------


def test_report_json_round_trip(tiny_machine_a) -> None:
    report = check_workload(_small_kv(), tiny_machine_a, mode=PrestoreMode.DEMOTE)
    doc = json.loads(report.to_json())
    assert doc["workload"] == "kvpersist"
    assert doc["counts"][POSSIBLY_LOST] == len(report.acks)
    assert len(doc["acks"]) == len(report.acks)
    for diag_doc, diag in zip(doc["diagnostics"], report.diagnostics):
        assert Diagnostic.from_dict(diag_doc) == diag


def test_stream_vocabulary_is_equivalent(tiny_machine_a) -> None:
    """The batched STREAM vocabulary must not change the verdicts: the
    extractor unrolls streams exactly as a fault-injected machine does."""
    for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
        unrolled = check_workload(_small_kv(), tiny_machine_a, mode=mode, streams=False)
        batched = check_workload(_small_kv(), tiny_machine_a, mode=mode, streams=True)
        assert [a.to_dict() for a in unrolled.acks] == [a.to_dict() for a in batched.acks]
        assert unrolled.instr_total == batched.instr_total


def test_multithreaded_extraction_is_approximate(tiny_machine_a) -> None:
    report = check_workload(
        _small_kv(keys=8, threads=2, operations=8), tiny_machine_a, mode=PrestoreMode.CLEAN
    )
    assert not report.exact_indices
    assert report.threads == 2
    assert any(d.rule == "crashcheck.approximate-indices" for d in report.diagnostics)
