"""Structured logging context and the wall-clock span profiler."""

import logging
import time

from repro.obs.log import (
    SpanProfiler,
    current_context,
    get_logger,
    run_context,
    span,
)


class TestRunContext:
    def test_default_context_is_empty(self):
        assert current_context() == {"run_id": None, "experiment_id": None, "worker": None}

    def test_worker_tag_stamps_records(self):
        logger = get_logger("test-worker")
        captured = []

        class Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        handler = Capture()
        logger.addHandler(handler)
        try:
            with run_context(run_id="r", worker="pid123"):
                logger.warning("pooled")
            logger.warning("outside")
        finally:
            logger.removeHandler(handler)
        assert captured[0].worker == "pid123"
        assert captured[1].worker == "-"

    def test_nested_contexts_restore(self):
        with run_context(run_id="r1", experiment_id="e1"):
            assert current_context()["run_id"] == "r1"
            with run_context(run_id="r2"):
                assert current_context()["run_id"] == "r2"
                # experiment_id inherited from the enclosing context
                assert current_context()["experiment_id"] == "e1"
            assert current_context()["run_id"] == "r1"
        assert current_context()["run_id"] is None

    def test_records_carry_context_fields(self):
        logger = get_logger("test")
        captured = []

        class Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        handler = Capture()
        logger.addHandler(handler)
        try:
            with run_context(run_id="listing1/none/s7"):
                logger.warning("hello")
            logger.warning("outside")
        finally:
            logger.removeHandler(handler)
        assert captured[0].run_id == "listing1/none/s7"
        assert captured[1].run_id == "-"

    def test_library_is_silent_by_default(self):
        # NullHandler on the namespace root: no "No handlers could be
        # found" warnings, nothing written unless basic_config() opts in.
        assert any(
            isinstance(h, logging.NullHandler)
            for h in logging.getLogger("repro.obs").handlers
        )


class TestSpanProfiler:
    def test_span_counts_and_self_time(self):
        profiler = SpanProfiler()
        with profiler.span("outer"):
            time.sleep(0.01)
            with profiler.span("inner"):
                time.sleep(0.01)
        stats = profiler.stats()
        assert stats["outer"].count == 1
        assert stats["inner"].count == 1
        # Child wall time is subtracted from the parent's self time.
        assert stats["outer"].self_s < stats["outer"].total_s
        assert stats["outer"].total_s >= stats["inner"].total_s

    def test_wrap_is_per_instance_and_reversible(self):
        class Thing:
            def work(self):
                return 42

        a, b = Thing(), Thing()
        profiler = SpanProfiler()
        profiler.wrap(a, "work", "thing.work")
        assert a.work() == 42
        assert b.work.__func__ is Thing.work  # other instances untouched
        assert getattr(a.work, "__wrapped__", None) is not None
        profiler.unwrap_all()
        assert not hasattr(a.work, "__wrapped__")  # original restored
        assert a.work() == 42
        assert profiler.stats()["thing.work"].count == 1

    def test_report_renders_all_spans(self):
        profiler = SpanProfiler()
        with profiler.span("alpha"):
            pass
        report = profiler.report()
        assert "alpha" in report
        assert "calls" in report

    def test_module_level_span_helper(self):
        with span("free-span"):
            pass
        from repro.obs.log import default_profiler

        assert "free-span" in default_profiler.stats()
