"""Unit and property tests for the DirtBuster B-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dirtbuster.btree import BTree
from repro.errors import ConfigurationError


class TestBasics:
    def test_min_degree_validated(self):
        with pytest.raises(ConfigurationError):
            BTree(t=1)

    def test_insert_get(self):
        tree = BTree(t=2)
        tree[5] = "five"
        tree[1] = "one"
        assert tree[5] == "five"
        assert tree.get(1) == "one"
        assert tree.get(99, "default") == "default"

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            BTree()[42]

    def test_overwrite(self):
        tree = BTree(t=2)
        tree[5] = "a"
        tree[5] = "b"
        assert tree[5] == "b"
        assert len(tree) == 1

    def test_setdefault(self):
        tree = BTree(t=2)
        assert tree.setdefault(1, "x") == "x"
        assert tree.setdefault(1, "y") == "x"

    def test_ordered_iteration(self):
        tree = BTree(t=2)
        keys = [9, 3, 7, 1, 5, 11, 2]
        for k in keys:
            tree[k] = k
        assert list(tree.keys()) == sorted(keys)
        assert list(tree.values()) == sorted(keys)

    def test_delete(self):
        tree = BTree(t=2)
        for k in range(50):
            tree[k] = k
        del tree[25]
        assert 25 not in tree
        assert len(tree) == 49
        with pytest.raises(KeyError):
            del tree[25]

    def test_pop(self):
        tree = BTree(t=2)
        tree[1] = "a"
        assert tree.pop(1) == "a"
        assert tree.pop(1, "gone") == "gone"

    def test_height_grows_logarithmically(self):
        tree = BTree(t=2)
        for k in range(1000):
            tree[k] = k
        assert tree.height() <= 12  # log2-ish, far below 1000

    def test_invariants_after_bulk_load(self):
        tree = BTree(t=3)
        order = list(range(500))
        random.Random(3).shuffle(order)
        for k in order:
            tree[k] = k
        tree.check_invariants()


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["set", "del", "get"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=300,
    ),
    t=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_btree_matches_dict_model(ops, t):
    """Property: the B-tree behaves exactly like a dict under random ops,
    and its structural invariants hold throughout."""
    tree = BTree(t=t)
    model = {}
    for op, key in ops:
        if op == "set":
            tree[key] = key * 2
            model[key] = key * 2
        elif op == "del":
            if key in model:
                del tree[key]
                del model[key]
            else:
                assert tree.pop(key) is None
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()
