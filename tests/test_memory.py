"""Unit tests for memory device models and the write combiner."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.memory import (
    DeviceSpec,
    MemoryDevice,
    WriteCombiner,
    cxl_ssd_spec,
    dram_spec,
    fpga_spec,
    optane_pmem_spec,
)


class TestDeviceSpec:
    def test_validation_rejects_non_power_of_two_granularity(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec("x", 10, 10, 192, 1.0).validate()

    def test_validation_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec("x", 10, 10, 256, 0.0).validate()

    def test_presets_are_valid(self):
        for spec in (dram_spec(), optane_pmem_spec(), cxl_ssd_spec(256), fpga_spec(60, 5.0)):
            spec.validate()

    def test_cxl_granularity_choices(self):
        assert cxl_ssd_spec(512).internal_granularity == 512
        with pytest.raises(ConfigurationError):
            cxl_ssd_spec(128)

    def test_table1_granularities(self):
        assert dram_spec().internal_granularity == 64
        assert optane_pmem_spec().internal_granularity == 256


class TestWriteCombiner:
    def test_sequential_lines_merge(self):
        wc = WriteCombiner(granularity=256, entries=8)
        closed = sum(wc.add(addr, 64) for addr in range(0, 256, 64))
        assert closed == 0
        assert wc.open_entries == 1
        assert wc.flush() == 1

    def test_scattered_lines_thrash(self):
        wc = WriteCombiner(granularity=256, entries=2)
        closed = 0
        for i in range(8):
            closed += wc.add(i * 4096, 64)  # all distinct blocks
        assert closed == 6  # capacity 2 retained
        assert wc.flush() == 2

    def test_write_spanning_blocks(self):
        wc = WriteCombiner(granularity=256, entries=8)
        wc.add(128, 256)  # touches blocks 0 and 1
        assert wc.open_entries == 2

    def test_repeated_writebacks_of_same_line_clamp_at_granularity(self):
        # Hot-line writebacks re-merge into the same open entry; the
        # merged-byte count must saturate at the block size instead of
        # accumulating unboundedly.
        wc = WriteCombiner(granularity=256, entries=8)
        for _ in range(100):
            wc.add(0, 64)
        assert wc.merges == 99
        # 100 x 64B re-merges saturate at 256, not 6400.
        assert wc._open[0] == 256
        for _ in range(50):
            wc.add(64, 64)  # a different line of the same block: still full
        assert wc._open[0] == 256
        assert wc.open_entries == 1
        assert wc.flush() == 1

    def test_on_close_fires_for_eviction_and_flush(self):
        closed = []
        wc = WriteCombiner(granularity=256, entries=2, on_close=closed.append)
        wc.add(0, 64)
        wc.add(4096, 64)
        wc.add(8192, 64)  # evicts block 0 (FIFO)
        assert closed == [0]
        wc.flush()
        assert closed == [0, 4096 // 256, 8192 // 256]
        assert wc.closes == 3


class TestMemoryDevice:
    def test_sequential_writebacks_no_amplification(self):
        dev = MemoryDevice(optane_pmem_spec())
        for addr in range(0, 64 * 1024, 64):
            dev.write_back(addr, 64, now=0.0)
        dev.flush(0.0)
        assert dev.write_amplification() == pytest.approx(1.0, abs=0.05)

    def test_scattered_writebacks_amplify_4x(self):
        dev = MemoryDevice(optane_pmem_spec())
        # One 64B line per 256B block, far apart: worst case.
        for i in range(1000):
            dev.write_back(i * 4096, 64, now=0.0)
        dev.flush(0.0)
        assert dev.write_amplification() == pytest.approx(4.0, abs=0.1)

    def test_dram_never_amplifies(self):
        dev = MemoryDevice(dram_spec())
        for i in range(1000):
            dev.write_back(i * 4096, 64, now=0.0)
        dev.flush(0.0)
        assert dev.write_amplification() == pytest.approx(1.0)

    def test_backlog_grows_with_writes(self):
        dev = MemoryDevice(optane_pmem_spec())
        assert dev.backlog(0.0) == 0.0
        for i in range(100):
            dev.write_back(i * 4096, 64, now=0.0)
        assert dev.backlog(0.0) > 0.0
        assert dev.backlog(1e9) == 0.0  # fully drained far in the future

    def test_read_pays_latency(self):
        dev = MemoryDevice(optane_pmem_spec())
        done = dev.read(0, 64, now=100.0)
        assert done >= 100.0 + dev.spec.read_latency

    def test_read_buffer_absorbs_same_block(self):
        dev = MemoryDevice(optane_pmem_spec())
        first = dev.read(0, 64, now=0.0)
        again = dev.read(64, 64, now=first)  # same 256B block
        other = dev.read(1 << 20, 64, now=first)
        assert (again - first) <= (other - first)

    def test_quiesce_time_reflects_queue(self):
        dev = MemoryDevice(optane_pmem_spec())
        assert dev.quiesce_time(5.0) == 5.0
        for i in range(100):
            dev.write_back(i * 4096, 64, now=0.0)
        assert dev.quiesce_time(0.0) > 0.0

    def test_directory_latency_device_resident(self):
        assert MemoryDevice(optane_pmem_spec()).directory_latency > 0
        assert MemoryDevice(dram_spec()).directory_latency == 0

    def test_idle_write_amplification_is_nan(self):
        # Regression: a 1.0 sentinel on zero bytes contradicted the
        # zero-denominator NaN convention (DESIGN.md §9).
        dev = MemoryDevice(optane_pmem_spec())
        assert math.isnan(dev.write_amplification())
        dev.write_back(0, 64, now=0.0)
        dev.flush(0.0)
        assert dev.write_amplification() == pytest.approx(4.0)

    def test_writeback_backlog_delays_read(self):
        # Regression: line fills used to charge only the media horizon,
        # so a merge-friendly writeback stream (bus busy, media idle)
        # never delayed reads on the shared link.
        quiet = MemoryDevice(optane_pmem_spec())
        busy = MemoryDevice(optane_pmem_spec())
        # Sequential 64B writebacks into one 256B block: all merge, the
        # combiner closes nothing, so only the *bus* is loaded.
        for i in range(512):
            busy.write_back((i % 4) * 64, 64, now=0.0)
        assert busy.stats.media_writes == 0
        addr = 1 << 20  # cold block, same media cost on both devices
        assert busy.read(addr, 64, now=0.0) > quiet.read(addr, 64, now=0.0)

    def test_read_does_not_inflate_write_bus(self):
        # Fills wait behind writebacks, not the other way around: read
        # returns never push the writers' bus horizon back (they occupy
        # the media, which is shared contention, but not the bus).
        dev = MemoryDevice(optane_pmem_spec())
        for i in range(64):
            dev.read(i * 4096, 64, now=0.0)
        assert dev._bus_next_free == 0.0
        assert dev._read_return_next_free > 0.0

    def test_media_write_starts_after_bus_delivery(self):
        # Regression: a closed combiner entry's media write used to start
        # at max(now, media_next_free), i.e. possibly before the bus had
        # delivered the payload that triggered the close.
        spec = DeviceSpec(
            name="slow-bus", read_latency=10, write_latency=0,
            internal_granularity=256, bandwidth_bytes_per_cycle=1.0,
            combiner_entries=1,
        )
        dev = MemoryDevice(spec)
        dev.write_back(0, 64, now=0.0)          # opens block 0; bus [0, 64)
        done = dev.write_back(4096, 64, now=0.0)  # closes block 0; bus [64, 128)
        # The 256B media write may start only once the bus finished at
        # t=128, so the closing writeback is durable no earlier than 384.
        assert done >= 128 + 256


@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000), st.sampled_from([64, 128, 256])),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=50, deadline=None)
def test_write_amplification_bounds(writes):
    """Property: 64B-aligned writeback streams amplify between ~1x and 4x."""
    dev = MemoryDevice(optane_pmem_spec())
    for block, size in writes:
        dev.write_back(block * 64, size, now=0.0)
    dev.flush(0.0)
    wa = dev.write_amplification()
    assert wa <= 4.0 + 1e-9
    # Media never writes less than one granularity per *distinct* block.
    distinct_blocks = {
        b
        for block, size in writes
        for b in range(block * 64 // 256, (block * 64 + size - 1) // 256 + 1)
    }
    assert dev.stats.media_bytes_written >= 256 * len(distinct_blocks)
