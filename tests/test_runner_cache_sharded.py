"""Sharded ResultCache: O(1) hot path, migration, concurrency, eviction, GC."""

import json
import os

from repro.runner.cache import MANIFEST_NAME, ResultCache


def _key(i):
    """A plausible content-hash key (64 hex chars, distinct shards)."""
    return f"{i:064x}"


def _fill(cache, n, payload="x" * 100):
    keys = [_key(i) for i in range(n)]
    for k in keys:
        cache.store(k, payload)
    return keys


class TestO1HotPath:
    def test_len_stats_load_do_no_directory_walk(self, tmp_path, monkeypatch):
        # The regression this suite exists for: __len__/stats()/load()
        # must be answered by the manifest index, never by walking the
        # (potentially million-entry) tree.
        keys = _fill(ResultCache(tmp_path), 200)
        fresh = ResultCache(tmp_path)

        def forbid(*args, **kwargs):
            raise AssertionError("directory walk on the cache hot path")

        monkeypatch.setattr(os, "walk", forbid)
        monkeypatch.setattr(os, "scandir", forbid)
        monkeypatch.setattr(os, "listdir", forbid)
        assert len(fresh) == 200
        assert fresh.stats()["entries"] == 200
        assert fresh.total_bytes == 200 * 100
        assert fresh.load(keys[7]) == "x" * 100
        assert fresh.load(_key(10**6)) is None  # a miss is O(1) too

    def test_payloads_land_in_two_level_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "abcdef" + "0" * 58
        cache.store(key, "payload")
        assert (tmp_path / "ab" / "cd" / f"{key}.json").is_file()
        assert cache._payload_path(key).read_text() == "payload"

    def test_manifest_survives_torn_tail_line(self, tmp_path):
        _fill(ResultCache(tmp_path), 5)
        with open(tmp_path / MANIFEST_NAME, "a") as fh:
            fh.write('{"op": "add", "key": "torn-by-a-ki')  # no newline, no close
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 5

    def test_compact_rewrites_one_line_per_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 6)
        cache.evict(keys[0])
        cache.store(keys[1], "y" * 50)  # re-store: two add lines pre-compact
        cache.compact()
        lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
        assert len(lines) == 1 + 5  # header + one add per live entry
        assert len(ResultCache(tmp_path)) == 5


class TestMigration:
    def test_flat_layout_reads_through_and_migrates(self, tmp_path):
        key = _key(1)
        (tmp_path / f"{key}.json").write_text("flat-payload")
        cache = ResultCache(tmp_path)
        assert cache.load(key) == "flat-payload"
        assert cache._payload_path(key).is_file()
        assert not (tmp_path / f"{key}.json").exists()
        assert len(cache) == 1
        # A fresh instance finds the migrated entry at its sharded path.
        assert ResultCache(tmp_path).load(key) == "flat-payload"

    def test_v1_single_level_layout_reads_through(self, tmp_path):
        key = _key(2)
        (tmp_path / key[:2]).mkdir()
        (tmp_path / key[:2] / f"{key}.json").write_text("v1-payload")
        (tmp_path / key[:2] / f"{key}.meta.json").write_text('{"run_id": "old"}')
        cache = ResultCache(tmp_path)
        assert cache.load(key) == "v1-payload"
        assert cache.load_meta(key) == {"run_id": "old"}
        assert cache._meta_path(key).is_file()

    def test_pre_manifest_tree_is_adopted_once(self, tmp_path):
        # A cache written before the manifest existed: first index load
        # walks once, adopts everything, and writes the manifest so the
        # walk is never paid again.
        for i in range(4):
            key = _key(i)
            shard = tmp_path / key[:2] / key[2:4]
            shard.mkdir(parents=True, exist_ok=True)
            (shard / f"{key}.json").write_text("adopt-me")
        assert not (tmp_path / MANIFEST_NAME).exists()
        assert len(ResultCache(tmp_path)) == 4
        assert (tmp_path / MANIFEST_NAME).is_file()
        assert len(ResultCache(tmp_path)) == 4


class TestConcurrency:
    def test_two_sessions_interleaved_stores_never_corrupt(self, tmp_path):
        # Two live handles on one root (what two runner sessions on a
        # shared cache directory look like): every manifest line must
        # stay whole and a third reader must see the union.
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        for i in range(30):
            (a if i % 2 == 0 else b).store(_key(i), f"payload-{i}")
        for line in (tmp_path / MANIFEST_NAME).read_text().splitlines():
            assert isinstance(json.loads(line), dict)  # no torn/merged lines
        assert len(ResultCache(tmp_path)) == 30
        # An existing handle catches up through refresh().
        a.refresh()
        assert len(a) == 30 and a.load(_key(1)) == "payload-1"

    def test_same_key_stored_twice_counts_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_key(0), "one")
        cache.store(_key(0), "three")
        assert len(cache) == 1
        assert cache.total_bytes == len("three")
        assert len(ResultCache(tmp_path)) == 1


class TestEviction:
    def test_store_evicts_lru_to_fit_budget(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=5000)
        keys = _fill(cache, 6, payload="x" * 1000)
        assert cache.total_bytes <= 5000
        assert cache.load(keys[-1]) is not None  # the entry that tripped it survives
        assert cache.load(keys[0]) is None  # the oldest went first
        assert cache.stats()["evictions"] >= 1
        # Disk agrees with the index: evicted payloads are gone.
        assert not cache._payload_path(keys[0]).exists()

    def test_hits_bump_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=5000)
        keys = [_key(i) for i in range(5)]
        for k in keys:
            cache.store(k, "x" * 1000)
        assert cache.load(keys[0]) is not None  # refresh the oldest
        cache.store(_key(99), "x" * 1000)  # trips the budget
        assert cache.load(keys[0]) is not None  # recently used: kept
        assert cache.load(keys[1]) is None  # true LRU victim

    def test_no_budget_means_no_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 20, payload="x" * 1000)
        assert len(cache) == 20 and cache.stats()["evictions"] == 0


class TestGC:
    def test_gc_reconciles_disk_and_manifest(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 3)
        # Sabotage: a vanished payload, crashed-writer litter, an orphan
        # meta, and a payload the manifest never heard about.
        cache._payload_path(keys[0]).unlink()
        (tmp_path / "ab" / ".tmp-crashed").parent.mkdir(parents=True, exist_ok=True)
        (tmp_path / "ab" / ".tmp-crashed").write_text("partial")
        orphan = _key(50)
        shard = tmp_path / orphan[:2] / orphan[2:4]
        shard.mkdir(parents=True, exist_ok=True)
        (shard / f"{orphan}.meta.json").write_text("{}")
        stray = _key(60)
        shard = tmp_path / stray[:2] / stray[2:4]
        shard.mkdir(parents=True, exist_ok=True)
        (shard / f"{stray}.json").write_text("untracked")

        fresh = ResultCache(tmp_path)
        counts = fresh.gc()
        assert counts["dropped"] == 1
        assert counts["tmp_removed"] == 1
        assert counts["meta_removed"] == 1
        assert counts["adopted"] == 1
        assert len(fresh) == 3  # 3 stored - 1 vanished + 1 adopted
        assert fresh.load(stray) == "untracked"
        assert fresh.load(keys[0]) is None

    def test_gc_migrates_legacy_payloads(self, tmp_path):
        key = _key(3)
        (tmp_path / f"{key}.json").write_text("flat")
        cache = ResultCache(tmp_path)
        # Force a manifest so gc (not index adoption) does the work.
        cache.store(_key(4), "stored")
        counts = cache.gc()
        assert counts["migrated"] == 1
        assert cache._payload_path(key).read_text() == "flat"
        assert len(cache) == 2


class TestMetrics:
    def test_publish_metrics_exports_cache_gauges(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        cache = ResultCache(tmp_path)
        cache.store(_key(0), "payload")
        cache.load(_key(0))
        cache.load(_key(1))
        registry = cache.publish_metrics(MetricsRegistry())
        assert registry.gauge("cache.hits").value == 1.0
        assert registry.gauge("cache.misses").value == 1.0
        assert registry.gauge("cache.stores").value == 1.0
        assert registry.gauge("cache.entries").value == 1.0
        assert registry.gauge("cache.bytes").value == float(len("payload"))

    def test_monitor_snapshot_includes_cache_counters(self, tmp_path):
        from repro.runner.monitor import SweepMonitor

        cache = ResultCache(tmp_path)
        cache.store(_key(0), "payload")
        monitor = SweepMonitor(cache=cache)
        monitor._publish()
        snapshot = monitor.snapshot()
        assert snapshot["cache_stores"] == 1.0
        assert "cache:" in "\n".join(
            line for line in monitor.render_dashboard().splitlines()
        )
