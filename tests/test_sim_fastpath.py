"""Equivalence and unit tests for the batched stream interpreter.

The fast path's contract is bit-identity: running a workload with the
batched STREAM vocabulary must produce exactly the ``RunResult`` JSON
the reference one-event-per-access vocabulary produces, on every
machine preset (DESIGN.md §11).  These tests pin that contract for a
representative workload per family, as a hypothesis property over
random access programs, and at the observer boundary.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.cache import CacheLevel, CacheLevelSpec
from repro.sim.event import Event, EventKind, STREAM_KINDS, UNKNOWN_SITE
from repro.sim.machine import (
    Machine,
    Tracer,
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.sim.replacement import make_policy
from repro.workloads.kv.clht import CLHTWorkload
from repro.workloads.kv.ycsb import YCSBSpec
from repro.workloads.memapi import Program
from repro.workloads.microbench import Listing1
from repro.workloads.nas.mg import MGWorkload
from repro.workloads.x9 import X9Workload

PRESETS = [machine_a, machine_dram, machine_a_cxl, machine_b_fast, machine_b_slow]


def _make_listing1():
    return Listing1(element_size=1024, num_elements=64, iterations=200)


def _make_mg():
    return MGWorkload(grid=16, iterations=1, threads=2)


def _make_clht():
    return CLHTWorkload(spec=YCSBSpec(num_keys=512, operations=600), threads=2)


def _make_x9():
    return X9Workload(messages=300)


WORKLOADS = [
    pytest.param(_make_listing1, id="microbench-listing1"),
    pytest.param(_make_mg, id="nas-mg"),
    pytest.param(_make_clht, id="kv-clht"),
    pytest.param(_make_x9, id="x9"),
]


class TestBitIdentity:
    """Stream vs. reference vocabulary on every preset x workload family."""

    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: p.__name__)
    @pytest.mark.parametrize("make_workload", WORKLOADS)
    def test_runresult_json_identical(self, preset, make_workload):
        reference = make_workload().run(preset(), streams=False).run.to_json()
        fast = make_workload().run(preset(), streams=True).run.to_json()
        assert fast == reference

    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: p.__name__)
    @pytest.mark.parametrize(
        "bench", ["seq_write_cold", "rand_write_cold", "rand_read_cold", "mixed_cold"]
    )
    def test_cold_benchmarks_identical(self, preset, bench):
        # The fused miss path's own acceptance matrix: cold sequential,
        # page-shuffled random, and alternating read/write streams over a
        # larger-than-cache buffer, on every preset (hashed LLC indexing,
        # weak ordering, every device flavour).  Small sizes — the full
        # sizes run in repro.sim.bench, which performs this same check.
        from repro.sim.bench import BENCHMARKS, _run_once

        body = BENCHMARKS[bench][0]
        sizes = (32 * 1024, 1)
        reference, _ = _run_once(preset(), body, sizes, streams=False)
        fast, _ = _run_once(preset(), body, sizes, streams=True)
        assert fast.to_json() == reference.to_json()


# -- property: random access programs ---------------------------------------

_op = st.tuples(
    st.booleans(),  # write?
    st.integers(min_value=0, max_value=48),  # start line within the buffer
    st.integers(min_value=1, max_value=24),  # run length in lines
)


def _bodies(t, ops, as_streams):
    buf = t.alloc(80 * t.line_size, label="prop")
    line = t.line_size
    for is_write, start, nlines in ops:
        addr = buf.base + (start % 56) * line
        size = nlines * line
        if as_streams:
            if is_write:
                yield from t.write_block(addr, size)
            else:
                yield from t.read_block(addr, size)
        else:
            offset = 0
            while offset < size:
                if is_write:
                    yield t.write(addr + offset, line)
                else:
                    yield t.read(addr + offset, line)
                offset += line


@settings(max_examples=30, deadline=None)
@given(
    ops_a=st.lists(_op, min_size=1, max_size=12),
    ops_b=st.lists(_op, min_size=0, max_size=12),
)
def test_random_streams_match_reference(ops_a, ops_b):
    """Two interleaved threads of random runs: identical stats both ways.

    Exercises scheduler preemption: a long stream on one core must
    yield to the other core exactly where the per-event scheduler
    would have switched.
    """
    results = {}
    for as_streams in (False, True):
        program = Program(machine_a(num_cores=2), streams=as_streams)
        program.spawn(_bodies, ops_a, as_streams)
        if ops_b:
            program.spawn(_bodies, ops_b, as_streams)
        results[as_streams] = program.run().to_json()
    assert results[True] == results[False]


# -- observer boundary -------------------------------------------------------


class _Recorder(Tracer):
    def __init__(self):
        self.records = []

    def record(self, core_id, event, instr_index, cycles):
        self.records.append((core_id, event.kind, event.addr, event.size, instr_index, cycles))


class _BatchRecorder(_Recorder):
    accepts_streams = True


def test_observers_see_per_access_records():
    """A default observer gets the exact reference record stream."""
    captured = {}
    for as_streams in (False, True):
        rec = _Recorder()
        program = Program(machine_a(), tracer=rec, streams=as_streams)
        program.spawn(_bodies, [(True, 0, 8), (False, 2, 6), (True, 3, 12)], as_streams)
        captured[as_streams] = (program.run().to_json(), rec.records)
    assert captured[True] == captured[False]
    kinds = {r[1] for r in captured[True][1]}
    assert kinds <= {EventKind.READ, EventKind.WRITE}  # streams were unrolled


def test_batch_observer_gets_stream_records():
    """An accepts_streams observer sees batch records, results unchanged."""
    rec = _BatchRecorder()
    program = Program(machine_a(), tracer=rec, streams=True)
    program.spawn(_bodies, [(True, 0, 8), (False, 2, 6)], True)
    with_obs = program.run().to_json()

    program2 = Program(machine_a(), streams=False)
    program2.spawn(_bodies, [(True, 0, 8), (False, 2, 6)], False)
    assert with_obs == program2.run().to_json()

    stream_records = [r for r in rec.records if r[1] in STREAM_KINDS]
    assert stream_records, "batch-aware observer should receive stream records"
    # One record per run, covering the whole byte range.
    assert stream_records[0][3] == 8 * 64


# -- fault plans x fast path --------------------------------------------------


class TestFaultPlansOnFastPath:
    """Fault injection and the batched vocabulary must compose safely.

    The injector registers with ``accepts_streams = False``, so any
    non-empty plan forces per-access unrolling: the fused store loops
    never run under faults, and crash points land on the same
    instruction whichever vocabulary the caller requested.
    """

    def test_empty_plan_is_identity_on_fast_path(self):
        from repro.faults import FaultPlan, run_with_faults
        from repro.faults.workloads import LogAppendWorkload

        spec = machine_a()
        plain = (
            LogAppendWorkload(record_size=256, records=24)
            .run(spec, streams=False)
            .run.to_json()
        )
        report = run_with_faults(
            LogAppendWorkload(record_size=256, records=24), spec, FaultPlan(), streams=True
        )
        assert report.result.to_json() == plain
        assert report.image is None and not report.crashed

    def test_crash_plan_pins_store_versions_regardless_of_stream_request(self):
        from repro.faults import CrashPoint, FaultPlan, run_with_faults
        from repro.faults.workloads import KVPersistWorkload

        plan = FaultPlan(crash=CrashPoint(at_instruction=120))
        reports = {
            streams: run_with_faults(
                KVPersistWorkload(operations=48), machine_a(), plan, seed=9, streams=streams
            )
            for streams in (False, True)
        }
        assert reports[True].crashed and reports[False].crashed
        # Versioned durability accounting is per-access; the forced
        # unrolling keeps every line's written/accepted/media version —
        # and hence the whole report — independent of the request.
        assert reports[True].image.line_versions == reports[False].image.line_versions
        assert reports[True].image.digest() == reports[False].image.digest()
        assert reports[True].to_json() == reports[False].to_json()


# -- stream event semantics ---------------------------------------------------


class TestStreamEvents:
    def test_stream_factory_maps_access_kinds(self):
        ev = Event.stream(EventKind.WRITE, addr=0, size=256, chunk=64)
        assert ev.kind is EventKind.STREAM_WRITE
        assert ev.access_kind is EventKind.WRITE
        assert ev.access_count == 4
        ev = Event.stream(EventKind.READ, addr=0, size=130, chunk=64)
        assert ev.kind is EventKind.STREAM_READ
        assert ev.access_count == 3  # last access is short

    def test_stream_validation(self):
        with pytest.raises(SimulationError):
            Event.stream(EventKind.FENCE, addr=0, size=64, chunk=64)
        with pytest.raises(SimulationError):
            Event.stream(EventKind.WRITE, addr=0, size=64, chunk=0)
        with pytest.raises(SimulationError):
            Event.stream(EventKind.WRITE, addr=-1, size=64, chunk=64)
        with pytest.raises(SimulationError):
            Event(EventKind.STREAM_READ, addr=0, size=64, chunk=64, nontemporal=True)

    def test_machine_step_accepts_streams(self):
        machine = Machine(machine_a())
        core = machine.cores[0]
        machine.step(core, Event.stream(EventKind.WRITE, addr=1 << 20, size=512, chunk=64))
        assert core.stats.writes == 8
        assert core.stats.instructions == 8
        assert machine.instruction_count == 8

    def test_lines_covers_stream_range(self):
        ev = Event.stream(EventKind.WRITE, addr=0, size=256, chunk=64)
        assert list(ev.lines(64)) == [0, 1, 2, 3]


# -- satellite regressions ----------------------------------------------------


def test_cache_level_hashed_index_comes_from_spec():
    spec = CacheLevelSpec(name="LLC", size_bytes=4096, ways=4, hit_latency=10, hashed_index=True)
    lvl = CacheLevel(spec, 64, make_policy("lru"))
    assert lvl.hashed_index is True
    plain = CacheLevel(
        CacheLevelSpec(name="L1", size_bytes=4096, ways=4, hit_latency=4), 64, make_policy("lru")
    )
    assert plain.hashed_index is False
    # Hashed and modulo indexing must actually differ for some line.
    assert any(lvl.set_index(line) != plain.set_index(line) for line in range(64))


def test_fence_str_includes_scope():
    assert str(Event(EventKind.FENCE)) == "fence(full)"
    assert str(Event(EventKind.FENCE, fence_scope="load")) == "fence(load)"


def test_event_str_markers():
    assert "nt" in str(Event(EventKind.WRITE, addr=0, size=8, nontemporal=True))
    assert "relaxed" in str(Event(EventKind.READ, addr=0, size=8, relaxed=True))
    s = str(Event.stream(EventKind.WRITE, addr=64, size=256, chunk=64))
    assert "stream_write" in s and "chunk=64" in s
