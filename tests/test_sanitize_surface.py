"""Import surface, CLI smoke, and the AutoTuner sanitizer gate."""

import os
import types

import pytest

import repro
import repro.sanitize
from repro.core.autotune import AutoTuner
from repro.core.prestore import PrestoreMode
from repro.dirtbuster.runner import DirtBuster
from repro.errors import Diagnostic, SanitizerError
from repro.sanitize.cli import main as sanitize_cli
from repro.sim.event import CodeSite
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing3

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestImportSurface:
    def test_sanitize_all_names_resolve(self):
        for name in repro.sanitize.__all__:
            assert getattr(repro.sanitize, name) is not None

    def test_expected_names_exported(self):
        expected = {
            "Diagnostic",
            "PrestoreLint",
            "RaceDetector",
            "Sanitizer",
            "SanitizerError",
            "StaticSanitizer",
            "sanitize",
            "static_check",
        }
        assert expected <= set(repro.sanitize.__all__)

    def test_errors_reexported_from_repro(self):
        assert repro.Diagnostic is Diagnostic
        assert repro.SanitizerError is SanitizerError

    def test_lazy_toplevel_exports(self):
        # repro.Sanitizer / the sanitize entry point resolve via the
        # package's lazy __getattr__ (a direct import would be a cycle).
        assert getattr(repro, "Sanitizer") is repro.sanitize.Sanitizer
        assert repro.__getattr__("sanitize") is repro.sanitize.sanitize
        assert "Sanitizer" in repro.__all__ and "sanitize" in repro.__all__

    def test_unknown_lazy_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_export

    def test_diagnostic_key_is_stable(self):
        site = CodeSite(function="f", file="x.c", line=3)
        a = Diagnostic(rule="race.write-read", severity="error", message="m", site=site)
        b = Diagnostic(rule="race.write-read", severity="error", message="other", site=site)
        assert a.key == b.key


class TestCliSmoke:
    def test_static_only_quickstart_is_clean(self, capsys):
        target = os.path.join(_REPO_ROOT, "examples", "quickstart.py")
        exit_code = sanitize_cli([target, "--static-only"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_no_targets_is_an_error(self):
        with pytest.raises(SystemExit):
            sanitize_cli([])


class _FakeDirtBuster(DirtBuster):
    """Always recommends cleaning ``listing3_loop`` — the misadvice the
    sanitizer gate exists to catch."""

    def analyze(self, workload, spec, seed=1234):
        recommendation = types.SimpleNamespace(
            patterns=types.SimpleNamespace(function="listing3_loop"),
            function="listing3_loop",
            choice=PrestoreMode.CLEAN,
            fallback=None,
            wants_prestore=True,
        )
        return types.SimpleNamespace(
            recommendation_for=lambda function: (
                recommendation if function == "listing3_loop" else None
            )
        )


class TestAutoTunerGate:
    def test_new_diagnostics_veto_the_patches(self):
        tuner = AutoTuner(dirtbuster=_FakeDirtBuster(), min_speedup=1e-9, sanitize=True)
        result = tuner.tune(lambda: Listing3(iterations=1500), machine_a())
        assert not result.kept
        assert result.new_diagnostics, "hot-rewrite finding must veto the patch"
        assert any(d.rule == "prestore.hot-rewrite" for d in result.new_diagnostics)
        assert result.adopted == {}
        assert "sanitizer finding" in result.summary()

    def test_gate_off_keeps_fast_enough_patches(self):
        # Without sanitize=True the same misadvice is only speed-gated:
        # min_speedup=1e-9 accepts any ratio, so the patch is kept.
        tuner = AutoTuner(dirtbuster=_FakeDirtBuster(), min_speedup=1e-9, sanitize=False)
        result = tuner.tune(lambda: Listing3(iterations=1500), machine_a())
        assert result.kept
        assert result.new_diagnostics == []
