"""Property tests for the arrival processes and the interleaver."""

import itertools
import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.interleave import compile_schedule
from repro.workloads.kv.ycsb import YCSBSpec


class TestArrivalSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            ArrivalSpec(kind="uniform")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(WorkloadError):
            ArrivalSpec(rate_per_kcycle=0.0)

    def test_rejects_one_sided_burst(self):
        with pytest.raises(WorkloadError):
            ArrivalSpec(burst_on_kcycles=1.0)
        with pytest.raises(WorkloadError):
            ArrivalSpec(burst_off_kcycles=1.0)

    def test_rejects_speedup_burst(self):
        with pytest.raises(WorkloadError):
            ArrivalSpec(burst_on_kcycles=1.0, burst_off_kcycles=1.0, burst_slowdown=0.5)

    def test_rejects_negative_count(self):
        with pytest.raises(WorkloadError):
            ArrivalSpec().times(-1)


@given(
    kind=st.sampled_from(("poisson", "constant")),
    rate=st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
    spec_seed=st.integers(0, 100),
    run_seed=st.integers(0, 1000),
    count=st.integers(0, 200),
)
@settings(max_examples=40, deadline=None)
def test_times_deterministic_and_monotonic(kind, rate, spec_seed, run_seed, count):
    spec = ArrivalSpec(kind=kind, rate_per_kcycle=rate, seed=spec_seed)
    a = spec.times(count, seed=run_seed)
    b = spec.times(count, seed=run_seed)
    assert a == b  # pure function of (spec, seed)
    assert len(a) == count
    assert all(t > 0 for t in a)
    assert all(x <= y for x, y in zip(a, a[1:]))


def test_times_untouched_by_global_rng():
    spec = ArrivalSpec()
    random.seed(1)
    a = spec.times(100, seed=5)
    random.seed(2)
    b = spec.times(100, seed=5)
    assert a == b


def test_distinct_seeds_differ():
    spec = ArrivalSpec()
    assert spec.times(50, seed=1) != spec.times(50, seed=2)
    # Two specs in one run differ through the spec-level seed too.
    assert ArrivalSpec(seed=1).times(50, seed=9) != ArrivalSpec(seed=2).times(50, seed=9)


@given(rate=st.floats(min_value=0.1, max_value=5.0), seed=st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_poisson_hits_mean_rate(rate, seed):
    spec = ArrivalSpec(kind="poisson", rate_per_kcycle=rate)
    times = spec.times(2000, seed=seed)
    gaps = [b - a for a, b in zip([0.0] + times, times)]
    # Mean of 2000 exponential gaps: sd/sqrt(n) ~ 2.2% of the mean, so
    # 15% absorbs the tail without ever passing a broken generator.
    assert statistics.fmean(gaps) == pytest.approx(spec.mean_gap_cycles, rel=0.15)


def test_constant_gaps_are_exact():
    spec = ArrivalSpec(kind="constant", rate_per_kcycle=2.0)
    times = spec.times(10, seed=3)
    assert times == [pytest.approx(500.0 * (i + 1)) for i in range(10)]


def test_burst_modulation_stretches_offered_load():
    base = ArrivalSpec(kind="constant", rate_per_kcycle=1.0)
    bursty = ArrivalSpec(
        kind="constant",
        rate_per_kcycle=1.0,
        burst_on_kcycles=5.0,
        burst_off_kcycles=5.0,
        burst_slowdown=4.0,
    )
    n = 400
    assert bursty.times(n, seed=1)[-1] > base.times(n, seed=1)[-1]
    # The analytic horizon tracks the realised constant-rate schedule.
    assert bursty.times(n, seed=1)[-1] == pytest.approx(
        bursty.expected_horizon_cycles(n), rel=0.1
    )


# -- interleaver ---------------------------------------------------------------


@given(
    clients=st.integers(1, 6),
    operations=st.integers(0, 300),
    seed=st.integers(0, 500),
    mix=st.sampled_from("ABCD"),
)
@settings(max_examples=25, deadline=None)
def test_schedule_preserves_each_clients_stream(clients, operations, seed, mix):
    spec = YCSBSpec(mix=mix, num_keys=64, operations=max(operations, 1))
    arrival = ArrivalSpec(rate_per_kcycle=1.0)
    schedule = compile_schedule(spec, arrival, clients, operations, seed)
    assert len(schedule) == clients
    assert sum(len(ops) for ops in schedule) == operations
    times = arrival.times(operations, seed=seed)
    for c, ops in enumerate(schedule):
        # Round-robin dispatch: client c serves arrivals c, c+clients, ...
        assert [op.index for op in ops] == list(range(c, operations, clients))
        assert [op.arrival for op in ops] == [times[i] for i in range(c, operations, clients)]
        assert [op.seq for op in ops] == list(range(len(ops)))
        # Contents are exactly a prefix of this client's own YCSB stream
        # (same per-client rng, disjoint strided insert keyspace).
        expected = list(
            itertools.islice(
                spec.operation_stream(
                    random.Random(seed + 7919 * c),
                    operations=len(ops),
                    insert_start=spec.num_keys + c,
                    insert_stride=clients,
                ),
                len(ops),
            )
        )
        assert [(op.op, op.key) for op in ops] == expected


def test_schedule_insert_keys_disjoint_across_clients():
    spec = YCSBSpec(mix="D", num_keys=32, operations=400)
    schedule = compile_schedule(spec, ArrivalSpec(), clients=4, operations=400, seed=11)
    inserted = [
        {op.key for op in ops if op.key >= spec.num_keys} for ops in schedule
    ]
    for a, b in itertools.combinations(inserted, 2):
        assert not (a & b)


def test_schedule_rejects_bad_arguments():
    spec = YCSBSpec(num_keys=16, operations=10)
    with pytest.raises(WorkloadError):
        compile_schedule(spec, ArrivalSpec(), clients=0, operations=10, seed=1)
    with pytest.raises(WorkloadError):
        compile_schedule(spec, ArrivalSpec(), clients=2, operations=-1, seed=1)
