"""Runner durability: retries, timeouts, broken pools, corrupt cache entries.

The worker-side saboteurs are module-level functions (picklable) driven
by a file-based counter, so their behaviour is identical whichever
process — pool worker or parent — invokes them.
"""

import functools
import os
import time

import pytest

from repro.core.prestore import PrestoreMode
from repro.errors import CellExecutionError, RunnerError
from repro.runner import Cell, ResultCache, execute_cells, runner_session
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing1


def _tiny_workload():
    return Listing1(element_size=512, num_elements=32, iterations=40)


def _cell(seed=7, factory=_tiny_workload, **kwargs):
    return Cell(make_workload=factory, spec=machine_a(), mode=PrestoreMode.NONE, seed=seed, **kwargs)


def _flaky_factory(counter_path, fail_times):
    """Fails the first ``fail_times`` invocations, then succeeds.

    The counter lives in a file so the count survives process hops;
    retries of one cell are sequential, so there is no write race.
    """
    try:
        with open(counter_path) as fh:
            count = int(fh.read() or 0)
    except FileNotFoundError:
        count = 0
    with open(counter_path, "w") as fh:
        fh.write(str(count + 1))
    if count < fail_times:
        raise RuntimeError(f"flaky failure #{count + 1}")
    return _tiny_workload()


def _always_raises():
    raise RuntimeError("kaboom")


def _kills_worker():
    os._exit(17)


def _sleeps_forever():
    time.sleep(30)
    return _tiny_workload()


class TestRetries:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_flaky_cell_succeeds_after_bounded_retries(self, tmp_path, workers):
        counter = str(tmp_path / "flaky-count")
        cell = _cell(factory=functools.partial(_flaky_factory, counter, 2))
        (outcome,) = execute_cells([cell], workers=workers, retries=2, backoff_s=0.01)
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert outcome.result is not None
        # The third invocation was the charm — and the last.
        assert open(counter).read() == "3"

    def test_retries_exhausted_yields_failed_outcome(self, tmp_path):
        counter = str(tmp_path / "flaky-count")
        cell = _cell(factory=functools.partial(_flaky_factory, counter, 5))
        (outcome,) = execute_cells([cell], workers=1, retries=1, backoff_s=0.01)
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "flaky failure" in outcome.error

    def test_no_retries_by_default(self, tmp_path):
        counter = str(tmp_path / "flaky-count")
        cell = _cell(factory=functools.partial(_flaky_factory, counter, 1))
        (outcome,) = execute_cells([cell], workers=1)
        assert outcome.status == "failed"
        assert outcome.attempts == 1


class TestSweepNotLost:
    """The acceptance criterion: one bad cell never costs the others."""

    def test_failing_cell_reports_structured_outcome(self):
        cells = [_cell(seed=1), _cell(factory=_always_raises, seed=2), _cell(seed=3)]
        outcomes = execute_cells(cells, workers=2)
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert len(outcomes) == len(cells)
        bad = outcomes[1]
        assert "RuntimeError: kaboom" in bad.error
        assert bad.result is None and bad.result_json is None
        assert outcomes[0].result_json == execute_cells([_cell(seed=1)])[0].result_json

    def test_worker_killing_cell_is_contained(self):
        # os._exit in a worker breaks the whole pool; the driver must
        # rebuild it, re-probe suspects solo, and never run the killer
        # in the parent process (which it would take down too).
        cells = [_cell(seed=1), _cell(factory=_kills_worker, seed=2), _cell(seed=3)]
        outcomes = execute_cells(cells, workers=2)
        assert outcomes[1].status == "failed"
        assert "worker process died" in outcomes[1].error
        assert outcomes[0].status == "ok"
        assert outcomes[2].status == "ok"

    def test_hanging_cell_times_out_and_sweep_continues(self):
        cells = [_cell(seed=1), _cell(factory=_sleeps_forever, seed=2)]
        started = time.monotonic()
        outcomes = execute_cells(cells, workers=2, timeout_s=1.0)
        elapsed = time.monotonic() - started
        assert outcomes[0].status == "ok"
        assert outcomes[1].status == "timeout"
        assert "timeout_s" in outcomes[1].error
        assert elapsed < 15  # nowhere near the 30s sleep

    def test_on_error_raise_carries_all_outcomes(self):
        cells = [_cell(seed=1), _cell(factory=_always_raises, seed=2)]
        with pytest.raises(CellExecutionError) as info:
            execute_cells(cells, workers=1, on_error="raise")
        outcomes = info.value.outcomes
        assert [o.status for o in outcomes] == ["ok", "failed"]
        assert outcomes[0].result is not None

    def test_on_error_validated(self):
        with pytest.raises(RunnerError):
            execute_cells([_cell()], on_error="explode")


class TestSessionDefaults:
    def test_session_retry_policy_is_ambient(self, tmp_path):
        counter = str(tmp_path / "flaky-count")
        cell = _cell(factory=functools.partial(_flaky_factory, counter, 1))
        with runner_session(workers=1, retries=1, backoff_s=0.01):
            (outcome,) = execute_cells([cell])
        assert outcome.status == "ok"
        assert outcome.attempts == 2


class TestCorruptCache:
    def _store_one(self, cache):
        cell = _cell()
        (outcome,) = execute_cells([cell], workers=1, cache=cache)
        key = cache.key_for(cell)
        assert cache.load(key) is not None
        return cell, key

    def test_truncated_payload_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell, key = self._store_one(cache)
        path = cache._payload_path(key)
        # Truncate mid-JSON: still parses as a str prefix? No — json.loads
        # fails; and even a *valid-JSON* fragment must be rejected below.
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        (outcome,) = execute_cells([cell], workers=1, cache=cache)
        assert outcome.status == "ok" and not outcome.cached
        assert cache.corrupt == 1
        # The corrupt entry was evicted and rewritten by the re-run.
        assert cache.load_result(key) is not None

    def test_valid_json_wrong_shape_is_also_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell, key = self._store_one(cache)
        cache._payload_path(key).write_text('{"not": "a RunResult"}')
        (outcome,) = execute_cells([cell], workers=1, cache=cache)
        assert outcome.status == "ok" and not outcome.cached
        assert cache.corrupt == 1

    def test_corrupt_counts_in_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell, key = self._store_one(cache)
        cache._payload_path(key).write_text("}{")
        assert cache.load_result(key) is None
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["hits"] == 1  # the original store-then-load round trip
