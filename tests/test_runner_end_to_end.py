"""End-to-end DirtBuster tests: the full sample->instrument->advise loop."""

import pytest

from repro.core.prestore import PrestoreMode
from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig
from repro.sim.machine import machine_a, machine_b_fast
from repro.workloads.microbench import Listing1, Listing3
from repro.workloads.phoronix import ReadMostlyWorkload
from repro.workloads.x9 import X9Workload


@pytest.fixture(scope="module")
def dirtbuster():
    return DirtBuster(DirtBusterConfig(sampling_period=53))


class TestEndToEnd:
    def test_listing1_gets_clean(self, dirtbuster):
        workload = Listing1(
            element_size=1024, num_elements=512, iterations=500, compute_per_iter=200
        )
        report = dirtbuster.analyze(workload, machine_a())
        assert report.classification.write_intensive
        assert report.classification.sequential_writes
        rec = report.recommendation_for("listing1_loop")
        assert rec is not None and rec.choice is PrestoreMode.CLEAN

    def test_listing3_declined(self, dirtbuster):
        report = dirtbuster.analyze(Listing3(iterations=4000), machine_a())
        rec = report.recommendation_for("listing3_loop")
        assert rec is not None and rec.choice is PrestoreMode.NONE

    def test_x9_gets_demote(self, dirtbuster):
        report = dirtbuster.analyze(X9Workload(messages=600), machine_b_fast())
        rec = report.recommendation_for("fill_msg")
        assert rec is not None and rec.choice is PrestoreMode.DEMOTE
        assert report.classification.writes_before_fence

    def test_read_mostly_app_skips_instrumentation(self, dirtbuster):
        workload = ReadMostlyWorkload("pytorch", "stream", scale=300)
        report = dirtbuster.analyze(workload, machine_a())
        assert not report.classification.write_intensive
        assert report.recommendations == []
        assert "not write-intensive" in report.render()

    def test_suggested_patches_config(self, dirtbuster):
        workload = Listing1(
            element_size=1024, num_elements=512, iterations=500, compute_per_iter=200
        )
        report = dirtbuster.analyze(workload, machine_a())
        patches = report.suggested_patches()
        assert patches.mode("listing1_loop") is PrestoreMode.CLEAN

    def test_report_renders_paper_style(self, dirtbuster):
        workload = Listing1(
            element_size=1024, num_elements=512, iterations=500, compute_per_iter=200
        )
        report = dirtbuster.analyze(workload, machine_a())
        text = report.render()
        assert "Perc. Seq. Writes" in text
        assert "Pre-store choice" in text


class TestCLIs:
    def test_dirtbuster_cli_runs(self, capsys):
        from repro.dirtbuster.cli import main

        assert main(["listing3", "--machine", "a", "--sampling-period", "53"]) == 0
        out = capsys.readouterr().out
        assert "Pre-store choice" in out
        assert "Table 2 row" in out

    def test_dirtbuster_cli_list(self, capsys):
        from repro.dirtbuster.cli import main

        assert main(["--list"]) == 0
        assert "nas-mg" in capsys.readouterr().out

    def test_experiments_cli_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for eid in ("fig3", "fig13", "table2", "x9"):
            assert eid in out

    def test_experiments_cli_runs_one(self, capsys, tmp_path):
        from repro.experiments.cli import main

        md = tmp_path / "out.md"
        assert main(["table1", "--markdown", str(md)]) == 0
        assert "granularity" in md.read_text()
