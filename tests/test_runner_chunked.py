"""Chunked dispatch and warm sessions: identical bytes, contained failures."""

import functools
import os
import time

import pytest

from repro.core.prestore import PrestoreMode
from repro.runner import Cell, execute_cells, retry_delay, runner_session
from repro.runner.monitor import SweepMonitor
from repro.runner.pool import MAX_CHUNK_CELLS, _auto_chunk_size
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing1

MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN)


def _tiny_workload():
    return Listing1(element_size=512, num_elements=32, iterations=40)


def _cell(seed=7, factory=_tiny_workload, mode=PrestoreMode.NONE):
    return Cell(make_workload=factory, spec=machine_a(), mode=mode, seed=seed)


def _grid_cells(seeds=(1, 2, 3)):
    return [_cell(seed=s, mode=m) for s in seeds for m in MODES]


def _always_raises():
    raise RuntimeError("kaboom")


def _kills_worker():
    os._exit(17)


def _flaky_factory(counter_path, fail_times):
    try:
        with open(counter_path) as fh:
            count = int(fh.read() or 0)
    except FileNotFoundError:
        count = 0
    with open(counter_path, "w") as fh:
        fh.write(str(count + 1))
    if count < fail_times:
        raise RuntimeError(f"flaky failure #{count + 1}")
    return _tiny_workload()


class TestChunkSizing:
    def test_auto_chunk_targets_chunks_per_worker(self):
        assert _auto_chunk_size(64, 2) == 8  # 64 / (2 workers * 4)
        assert _auto_chunk_size(3, 2) == 1  # small sweeps stay per-cell
        assert _auto_chunk_size(100_000, 8) == MAX_CHUNK_CELLS  # capped

    def test_auto_chunk_never_below_one(self):
        assert _auto_chunk_size(0, 4) == 1
        assert _auto_chunk_size(1, 16) == 1


class TestBitIdentity:
    @pytest.mark.parametrize("chunk_size", [1, 2, None])
    def test_chunk_size_does_not_change_results(self, chunk_size):
        # The invariant the whole chunking layer is built under: the
        # serialised RunResult bytes are the same at any chunk size.
        cells = _grid_cells()
        reference = [o.result_json for o in execute_cells(cells, workers=1)]
        chunked = [
            o.result_json
            for o in execute_cells(cells, workers=2, chunk_size=chunk_size)
        ]
        assert chunked == reference

    def test_whole_sweep_in_one_chunk(self):
        cells = _grid_cells(seeds=(1, 2))
        reference = [o.result_json for o in execute_cells(cells, workers=1)]
        one_chunk = [
            o.result_json
            for o in execute_cells(cells, workers=2, chunk_size=len(cells))
        ]
        assert one_chunk == reference


class TestChunkFailureIsolation:
    def test_failing_cell_does_not_take_down_chunk_mates(self):
        cells = [_cell(seed=1), _cell(factory=_always_raises, seed=2), _cell(seed=3)]
        outcomes = execute_cells(cells, workers=2, chunk_size=3)
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert "kaboom" in outcomes[1].error
        # The survivors' bytes match a serial run (chunk-mates unharmed).
        serial = execute_cells([cells[0], cells[2]], workers=1)
        assert outcomes[0].result_json == serial[0].result_json
        assert outcomes[2].result_json == serial[1].result_json

    def test_flaky_cell_in_chunk_retries_solo_and_succeeds(self, tmp_path):
        flaky = functools.partial(_flaky_factory, str(tmp_path / "count"), 1)
        cells = [_cell(seed=1), _cell(factory=flaky, seed=2), _cell(seed=3)]
        outcomes = execute_cells(cells, workers=2, chunk_size=3, retries=2, backoff_s=0.01)
        assert all(o.status == "ok" for o in outcomes)
        assert outcomes[1].attempts == 2  # failed in the chunk, retried solo

    def test_worker_killer_is_contained_with_chunking(self):
        # A chunk-mate of an os._exit cell dies with the pool; the
        # driver must still isolate blame via solo re-probes and finish
        # every innocent cell.
        cells = [_cell(seed=1), _cell(factory=_kills_worker, seed=2), _cell(seed=3)]
        outcomes = execute_cells(cells, workers=2, chunk_size=3)
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert "died" in outcomes[1].error


class TestDeterministicBackoff:
    def test_retry_delay_is_reproducible(self):
        assert retry_delay("cell-abc", 1, 0.5) == retry_delay("cell-abc", 1, 0.5)

    def test_retry_delay_decorrelates_cells_and_attempts(self):
        delays = {
            retry_delay("cell-abc", 1, 0.5),
            retry_delay("cell-abc", 2, 0.5),
            retry_delay("cell-xyz", 1, 0.5),
        }
        assert len(delays) == 3

    def test_retry_delay_bounds(self):
        for attempt in (1, 2, 3):
            base = 0.5 * 2 ** (attempt - 1)
            delay = retry_delay("cell-abc", attempt, 0.5)
            assert base * 0.5 <= delay < base * 1.5


class TestEventsUnderChunking:
    def test_event_symmetry_and_monitor_inflight(self):
        monitor = SweepMonitor()
        cells = _grid_cells()
        execute_cells(cells, workers=2, chunk_size=2, events=monitor)
        assert monitor.done == len(cells)
        assert monitor.counts["ok"] == len(cells)
        assert monitor.inflight == 0  # every submit matched by a terminal event
        assert monitor.total == len(cells)

    def test_chunked_failure_events_match_per_cell_semantics(self):
        monitor = SweepMonitor()
        cells = [_cell(seed=1), _cell(factory=_always_raises, seed=2)]
        execute_cells(cells, workers=2, chunk_size=2, events=monitor)
        assert monitor.counts["ok"] == 1
        assert monitor.counts["failed"] == 1
        assert monitor.inflight == 0


class TestWarmSession:
    def test_session_reuses_one_pool_across_sweeps(self):
        with runner_session(workers=2) as session:
            execute_cells(_grid_cells(seeds=(1,)), workers=2)
            first = session._executor
            assert first is not None
            execute_cells(_grid_cells(seeds=(2,)), workers=2)
            assert session._executor is first  # same warm pool, no respawn
        assert session._executor is None  # closed with the session

    def test_warm_pool_second_sweep_is_not_slower_than_cold_spawn(self):
        # Not a speedup assertion (1-CPU CI boxes): only that reuse
        # never pays the spawn cost twice.
        cells = _grid_cells(seeds=(1,))
        with runner_session(workers=2):
            t0 = time.perf_counter()
            execute_cells(cells, workers=2)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            execute_cells(cells, workers=2, cache=None)
            warm = time.perf_counter() - t0
        assert warm < cold * 3  # loose: warm must not regress wildly

    def test_session_chunk_size_is_ambient(self):
        cells = _grid_cells()
        reference = [o.result_json for o in execute_cells(cells, workers=1)]
        with runner_session(workers=2, chunk_size=2):
            ambient = [o.result_json for o in execute_cells(cells)]
        assert ambient == reference
