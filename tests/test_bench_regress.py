"""The benchmark-trajectory store and regression gate."""

import json

from repro.obs.regress import (
    GATES,
    HISTORY_SCHEMA,
    append_history,
    check_history,
    flatten_metrics,
    load_history,
    main,
)

RUNNER_DOC = {
    "bench": "repro.runner",
    "code_fingerprint": "fp-aaa",
    "deterministic": True,
    "warm_all_cached": True,
    "parallel_speedup": 2.0,
    "serial_cold_s": 1.5,
    "sim": {"seq_write_warm": {"speedup": 5.0, "identical": True}},
    "workers": 4,
    "notes": "strings are skipped",
}


def _seed(history, doc=None, fingerprint=None, t=1.0):
    doc = dict(RUNNER_DOC if doc is None else doc)
    if fingerprint is not None:
        doc["code_fingerprint"] = fingerprint
    return append_history(doc, bench="runner", history=history, timestamp=t)


class TestFlatten:
    def test_dotted_numeric_leaves(self):
        flat = flatten_metrics(RUNNER_DOC)
        assert flat["sim.seq_write_warm.speedup"] == 5.0
        assert flat["parallel_speedup"] == 2.0
        assert "notes" not in flat
        assert "bench" not in flat  # strings skipped
        assert "code_fingerprint" not in flat

    def test_booleans_become_zero_one(self):
        flat = flatten_metrics(RUNNER_DOC)
        assert flat["deterministic"] == 1.0
        assert flat["sim.seq_write_warm.identical"] == 1.0

    def test_non_finite_leaves_dropped(self):
        flat = flatten_metrics({"a": float("nan"), "b": float("inf"), "c": 1.0})
        assert flat == {"c": 1.0}


class TestHistoryStore:
    def test_append_and_load(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        entry = _seed(history)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["fingerprint"] == "fp-aaa"
        (loaded,) = load_history(history)
        assert loaded == json.loads(json.dumps(entry))

    def test_fingerprint_falls_back_to_live_tree(self, tmp_path):
        doc = {k: v for k, v in RUNNER_DOC.items() if k != "code_fingerprint"}
        entry = append_history(doc, bench="runner", history=tmp_path / "h.jsonl", timestamp=1.0)
        assert entry["fingerprint"]  # the runner's cache fingerprint

    def test_garbage_lines_skipped(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history)
        with history.open("a") as fh:
            fh.write("not json\n")
            fh.write('{"schema": "something/else"}\n')
        assert len(load_history(history)) == 1

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestGates:
    def test_gate_table_shape(self):
        # First match wins: correctness booleans exact, ratios tolerant.
        directions = [direction for _, direction, _ in GATES]
        assert directions[0] == "exact"
        assert "higher" in directions and "lower" in directions

    def test_single_entry_is_all_new(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history)
        report = check_history(history)
        assert report.ok
        assert {t.verdict for t in report.trends} == {"new"}
        assert report.compared == []

    def test_steady_state_passes(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        _seed(history, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert report.ok
        assert report.compared == [("runner", "fp-bbb", "fp-aaa")]

    def test_boolean_flip_regresses_exactly(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        bad = dict(RUNNER_DOC, deterministic=False)
        _seed(history, doc=bad, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert not report.ok
        assert [t.metric for t in report.regressions] == ["deterministic"]

    def test_speedup_within_tolerance_passes(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        noisy = dict(RUNNER_DOC, parallel_speedup=2.0 * 0.80)  # -20% < 25%
        _seed(history, doc=noisy, fingerprint="fp-bbb", t=2.0)
        assert check_history(history).ok

    def test_speedup_beyond_tolerance_regresses(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        slow = dict(RUNNER_DOC, parallel_speedup=2.0 * 0.5)  # -50% > 25%
        _seed(history, doc=slow, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert [t.metric for t in report.regressions] == ["parallel_speedup"]

    def test_wall_clock_gates_upward_only(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        # 2x slower wall clock: beyond the 50% allowance, regresses.
        slow = dict(RUNNER_DOC, serial_cold_s=3.5)
        _seed(history, doc=slow, fingerprint="fp-bbb", t=2.0)
        assert [t.metric for t in check_history(history).regressions] == ["serial_cold_s"]
        # Getting *faster* by any amount is an improvement, never fatal.
        fast = dict(RUNNER_DOC, serial_cold_s=0.1)
        _seed(history, doc=fast, fingerprint="fp-ccc", t=3.0)
        assert check_history(history).ok

    def test_ungated_metrics_never_regress(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        shifted = dict(RUNNER_DOC, workers=1)
        _seed(history, doc=shifted, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert report.ok
        (trend,) = [t for t in report.trends if t.metric == "workers"]
        assert trend.direction is None and trend.verdict == "ok"

    def test_gated_metric_going_nan_regresses_explicitly(self, tmp_path):
        # Regression: a NaN speedup used to vanish from the flattened
        # entry and with it from the comparison — the gate passed while
        # the benchmark was reporting garbage.
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        broken = dict(RUNNER_DOC, parallel_speedup=float("nan"))
        _seed(history, doc=broken, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert not report.ok
        (trend,) = report.regressions
        assert trend.metric == "parallel_speedup"
        assert trend.vanished
        assert trend.latest == 2.0  # last numeric value, not NaN
        assert "went non-finite" in trend.describe()

    def test_ungated_metric_going_nan_is_not_fatal(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        shifted = dict(RUNNER_DOC, workers=float("nan"))
        _seed(history, doc=shifted, fingerprint="fp-bbb", t=2.0)
        report = check_history(history)
        assert report.ok
        assert not any(t.metric == "workers" and t.vanished for t in report.trends)

    def test_nan_points_in_history_render_and_gate_safely(self, tmp_path):
        # Hand-written or legacy histories can carry NaN points; the
        # comparator must neither crash nor report "ok" for them.
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        entry = json.loads(json.dumps(_seed(history, fingerprint="fp-bbb", t=2.0)))
        entry["metrics"]["parallel_speedup"] = float("nan")
        entry["fingerprint"] = "fp-ccc"
        with history.open("a") as fh:
            fh.write(json.dumps(entry) + "\n")
        report = check_history(history)
        (trend,) = [t for t in report.trends if t.metric == "parallel_speedup"]
        assert trend.verdict == "regressed"
        assert "?" in trend.sparkline()
        trend.describe()  # must not raise


class TestReport:
    def test_render_names_both_fingerprints(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        _seed(history, t=1.0)
        bad = dict(RUNNER_DOC, deterministic=False)
        _seed(history, doc=bad, fingerprint="fp-bbb", t=2.0)
        text = check_history(history).render()
        assert "fp-bbb (latest)" in text and "fp-aaa (previous)" in text
        assert "[REGRESSED] runner:deterministic" in text
        assert "1 regression(s)" in text

    def test_sparkline_tracks_the_series(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        for i, speedup in enumerate((1.0, 2.0, 3.0)):
            _seed(history, doc=dict(RUNNER_DOC, parallel_speedup=speedup),
                  fingerprint=f"fp-{i}", t=float(i))
        (trend,) = [
            t for t in check_history(history).trends if t.metric == "parallel_speedup"
        ]
        spark = trend.sparkline()
        assert len(spark) == 3
        assert spark[0] == " " and spark[-1] == "@"  # min -> max of the ramp


class TestCli:
    def test_append_then_check_exit_codes(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        doc_path = tmp_path / "BENCH_runner.json"
        doc_path.write_text(json.dumps(RUNNER_DOC))
        assert main(["append", "--bench", "runner", str(doc_path),
                     "--history", str(history)]) == 0
        assert main(["check", "--history", str(history)]) == 0
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(dict(RUNNER_DOC, deterministic=False,
                                            code_fingerprint="fp-bad")))
        assert main(["append", "--bench", "runner", str(bad_path),
                     "--history", str(history)]) == 0
        assert main(["check", "--history", str(history)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION: runner:deterministic" in captured.err
        assert "fp-bad (latest)" in captured.out
