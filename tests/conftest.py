"""Shared fixtures: small machines that keep unit tests fast."""

from __future__ import annotations

import pytest

from repro.sim.cache import CacheLevelSpec
from repro.sim.machine import MachineSpec
from repro.sim.memory import dram_spec, fpga_spec, optane_pmem_spec


@pytest.fixture
def tiny_machine_a() -> MachineSpec:
    """Machine A geometry shrunk for unit tests (16KB/64KB caches)."""
    return MachineSpec(
        name="tiny-A",
        line_size=64,
        memory_model="tso",
        cache_levels=(
            CacheLevelSpec(name="L1", size_bytes=16 * 1024, ways=4, hit_latency=4),
            CacheLevelSpec(name="LLC", size_bytes=64 * 1024, ways=8, hit_latency=30, hashed_index=True),
        ),
        device=optane_pmem_spec(),
        replacement_policy="intel-like",
        num_cores=4,
        seed=7,
    )


@pytest.fixture
def tiny_machine_b() -> MachineSpec:
    """Machine B geometry shrunk for unit tests."""
    return MachineSpec(
        name="tiny-B",
        line_size=128,
        memory_model="weak",
        cache_levels=(
            CacheLevelSpec(name="L1", size_bytes=16 * 1024, ways=4, hit_latency=4),
            CacheLevelSpec(name="L2", size_bytes=64 * 1024, ways=8, hit_latency=24, hashed_index=True),
        ),
        device=fpga_spec(read_latency=100, bandwidth=2.0, line_size=128),
        replacement_policy="arm-like",
        num_cores=4,
        seed=7,
    )


@pytest.fixture
def tiny_machine_dram() -> MachineSpec:
    """Conventional DRAM behind small caches (no write amplification)."""
    return MachineSpec(
        name="tiny-dram",
        line_size=64,
        memory_model="tso",
        cache_levels=(
            CacheLevelSpec(name="L1", size_bytes=16 * 1024, ways=4, hit_latency=4),
            CacheLevelSpec(name="LLC", size_bytes=64 * 1024, ways=8, hit_latency=30),
        ),
        device=dram_spec(),
        num_cores=4,
        seed=7,
    )
