"""Unit tests for the visibility model and run statistics."""

import math

import pytest

from repro.sim.coherence import VisibilityModel
from repro.sim.memory import MemoryDevice, dram_spec, fpga_spec
from repro.sim.stats import CoreStats, RunResult


class TestVisibilityModel:
    def test_device_directory_dominates(self):
        model = VisibilityModel()
        fpga = MemoryDevice(fpga_spec(read_latency=200, bandwidth=1.0))
        cached = model.visibility_latency(fpga, line_cached_exclusive=True)
        uncached = model.visibility_latency(fpga, line_cached_exclusive=False)
        assert cached >= 200  # directory round trip
        assert uncached >= 400  # directory + line fill

    def test_sram_directory_when_not_device_resident(self):
        model = VisibilityModel()
        dram = MemoryDevice(dram_spec())
        latency = model.visibility_latency(dram, line_cached_exclusive=True)
        assert latency == model.sram_directory_latency + model.local_publish_latency

    def test_latency_scales_with_device(self):
        model = VisibilityModel()
        fast = MemoryDevice(fpga_spec(read_latency=60, bandwidth=5.0))
        slow = MemoryDevice(fpga_spec(read_latency=200, bandwidth=0.75))
        assert model.visibility_latency(slow, False) > model.visibility_latency(fast, False)


def _result(**overrides):
    defaults = dict(
        machine_name="m",
        cycles=1000.0,
        cycles_with_drain=1200.0,
        instructions=500,
        cores=[CoreStats(core_id=0, cycles=1000.0, fence_stall_cycles=50.0)],
        cache_hits={"L1": 10},
        cache_misses={"L1": 2},
        cache_evictions={"L1": 1},
        cache_dirty_evictions={"L1": 1},
        device_writebacks=10,
        device_bytes_received=640,
        device_media_bytes_written=1280,
        device_reads=3,
        device_bytes_read=192,
        work_items=100,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_write_amplification(self):
        assert _result().write_amplification == 2.0
        assert math.isnan(_result(device_bytes_received=0).write_amplification)

    def test_throughput_prefers_drained_cycles(self):
        result = _result()
        assert result.throughput() == pytest.approx(1000.0 * 100 / 1200.0)
        assert result.throughput(with_drain=False) == pytest.approx(1000.0 * 100 / 1000.0)

    def test_speedups(self):
        fast = _result(cycles=500.0, cycles_with_drain=600.0)
        slow = _result()
        assert fast.speedup_over(slow) == 2.0
        assert fast.drained_speedup_over(slow) == 2.0

    def test_stall_aggregation(self):
        assert _result().total_fence_stall_cycles == 50.0

    def test_summary_is_readable(self):
        text = _result().summary()
        assert "WA=2.00x" in text and "m:" in text


class TestMachinePresets:
    """The paper's platforms (Section 3) plus the CXL forecast."""

    def test_all_presets_validate(self):
        from repro.sim.machine import (
            machine_a,
            machine_a_cxl,
            machine_b_fast,
            machine_b_slow,
            machine_dram,
        )

        for factory in (machine_a, machine_a_cxl, machine_b_fast, machine_b_slow, machine_dram):
            spec = factory()
            spec.validate()

    def test_machine_a_matches_paper(self):
        from repro.sim.machine import machine_a

        spec = machine_a()
        assert spec.line_size == 64
        assert spec.memory_model == "tso"
        assert spec.device.internal_granularity == 256  # Optane

    def test_machine_b_matches_paper(self):
        from repro.sim.machine import machine_b_fast, machine_b_slow

        fast, slow = machine_b_fast(), machine_b_slow()
        assert fast.line_size == slow.line_size == 128
        assert fast.memory_model == "weak"
        assert fast.device.read_latency == 60 and slow.device.read_latency == 200
        # B-fast: 10GB/s at ~2GHz = 5 B/cyc; B-slow: 1.5GB/s = 0.75 B/cyc.
        assert fast.device.bandwidth_bytes_per_cycle == 5.0
        assert slow.device.bandwidth_bytes_per_cycle == 0.75
        # No granularity mismatch on machine B (Section 6.2.3).
        assert fast.device.internal_granularity == fast.line_size

    def test_cxl_preset_amplifies_harder(self, tiny_machine_a):
        from repro.core.prestore import PatchConfig
        from repro.sim.machine import machine_a_cxl
        from repro.workloads.microbench import Listing1

        w = Listing1(element_size=1024, num_elements=512, iterations=400, threads=2)
        run = w.run(machine_a_cxl(granularity=512), PatchConfig.baseline()).run
        assert run.write_amplification > 3.0  # up to 8x possible at 512B
