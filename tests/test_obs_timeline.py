"""Timeline ring buffer, sampler wiring, and the ipmctl cross-check."""

import json
import math

import pytest

from repro.analysis.ipmctl import MediaCounters, read_media_counters
from repro.obs.collector import ObsCollector
from repro.obs.sampler import TimelineSampler
from repro.obs.timeline import Timeline, TimelineSample
from repro.workloads.microbench import Listing1
from repro.workloads.x9 import X9Workload


def _sample(t, dt=1.0, **overrides):
    fields = dict(
        t=t,
        dt=dt,
        device_bytes_received=0,
        device_media_bytes_written=0,
        device_bytes_read=0,
        store_buffer_occupancy=(0,),
        combiner_open_entries=0,
        combiner_closes=0,
        cache_accesses=0,
        cache_hits=0,
        fence_stall_cycles=0.0,
        backpressure_stall_cycles=0.0,
        running_write_amplification=1.0,
    )
    fields.update(overrides)
    return TimelineSample(**fields)


class TestTimeline:
    def test_append_requires_increasing_timestamps(self):
        timeline = Timeline(interval=1.0)
        timeline.append(_sample(1.0))
        with pytest.raises(ValueError):
            timeline.append(_sample(1.0))
        with pytest.raises(ValueError):
            timeline.append(_sample(0.5))

    def test_ring_eviction_keeps_cumulative_totals(self):
        timeline = Timeline(interval=1.0, capacity=4)
        for i in range(10):
            timeline.append(_sample(float(i + 1), device_bytes_received=64))
        assert len(timeline) == 4
        assert timeline.dropped == 6
        # Evicted samples stay counted in the exact totals; integrated()
        # covers only the retained window.
        assert timeline.cumulative["device_bytes_received"] == 640
        assert timeline.integrated("device_bytes_received") == 4 * 64

    def test_summary_on_empty_timeline(self):
        assert Timeline(interval=1.0).summary() == {}

    def test_json_round_trip(self):
        timeline = Timeline(interval=2.0, capacity=8)
        for i in range(12):
            timeline.append(_sample(float(2 * (i + 1)), dt=2.0, cache_accesses=3, cache_hits=2))
        restored = Timeline.from_json(timeline.to_json())
        assert restored.interval == timeline.interval
        assert restored.dropped == timeline.dropped
        assert restored.cumulative == timeline.cumulative
        assert [s.to_dict() for s in restored] == [s.to_dict() for s in timeline]


class TestSamplerOnRuns:
    @pytest.fixture(scope="class")
    def obs_run(self, tiny_machine_a_module):
        collector = ObsCollector(interval=200.0, trace=False)
        result = Listing1(iterations=400).run(
            tiny_machine_a_module, seed=3, obs=collector
        ).run
        return result, collector

    def test_disabled_run_never_invokes_sampler(self, tiny_machine_a, monkeypatch):
        calls = []
        original = TimelineSampler.record
        monkeypatch.setattr(
            TimelineSampler, "record", lambda self, *a: (calls.append(a), original(self, *a))
        )
        result = Listing1(iterations=200).run(tiny_machine_a, seed=3).run
        assert calls == []
        assert result.timeline is None

    def test_timeline_lands_on_result(self, obs_run):
        result, collector = obs_run
        assert result.timeline is collector.timeline
        assert len(result.timeline) > 1

    def test_timestamps_strictly_increasing(self, obs_run):
        result, _ = obs_run
        ts = [s.t for s in result.timeline]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_seeded_runs_sample_deterministically(self, tiny_machine_a):
        def one():
            collector = ObsCollector(interval=200.0, trace=False)
            Listing1(iterations=300).run(tiny_machine_a, seed=11, obs=collector)
            return [s.to_dict() for s in collector.timeline]

        assert one() == one()

    def test_tail_sample_covers_drain(self, obs_run):
        # The end-of-run store-buffer/combiner drain happens after the last
        # instruction retires; the tail sample must capture it or the
        # integration falls short of the final counters.
        result, _ = obs_run
        assert result.timeline[-1].t >= result.cycles_with_drain

    def test_cross_check_listing1(self, obs_run):
        # Acceptance criterion: integrating the per-interval device bytes
        # reproduces the final ipmctl counters exactly.
        result, _ = obs_run
        assert MediaCounters.from_timeline(result.timeline) == read_media_counters(result)

    def test_cross_check_x9(self, tiny_machine_b):
        collector = ObsCollector(interval=500.0, trace=False)
        result = X9Workload(messages=200).run(tiny_machine_b, seed=5, obs=collector).run
        assert len(result.timeline) > 1
        assert MediaCounters.from_timeline(result.timeline) == read_media_counters(result)

    def test_cross_check_survives_ring_eviction(self, tiny_machine_a):
        collector = ObsCollector(interval=100.0, capacity=8, trace=False)
        result = Listing1(iterations=400).run(tiny_machine_a, seed=3, obs=collector).run
        assert collector.timeline.dropped > 0
        assert MediaCounters.from_timeline(result.timeline) == read_media_counters(result)

    def test_summary_consistent_with_final_stats(self, obs_run):
        result, _ = obs_run
        summary = result.timeline.summary()
        assert summary["write_amplification"] == pytest.approx(result.write_amplification)
        assert summary["backpressure_stall_cycles"] == pytest.approx(
            result.total_backpressure_stall_cycles
        )

    def test_sampler_is_single_use(self, tiny_machine_a):
        sampler = TimelineSampler(interval=100.0)
        Listing1(iterations=50).run(tiny_machine_a, seed=3, obs=sampler)
        with pytest.raises(Exception):
            Listing1(iterations=50).run(tiny_machine_a, seed=3, obs=sampler)


@pytest.fixture(scope="class")
def tiny_machine_a_module(request):
    # Class-scoped clone of the function-scoped conftest fixture so the
    # seeded reference run is simulated once per class.
    from repro.sim.cache import CacheLevelSpec
    from repro.sim.machine import MachineSpec
    from repro.sim.memory import optane_pmem_spec

    return MachineSpec(
        name="tiny-A",
        line_size=64,
        memory_model="tso",
        cache_levels=(
            CacheLevelSpec(name="L1", size_bytes=16 * 1024, ways=4, hit_latency=4),
            CacheLevelSpec(name="LLC", size_bytes=64 * 1024, ways=8, hit_latency=30, hashed_index=True),
        ),
        device=optane_pmem_spec(),
        replacement_policy="intel-like",
        num_cores=4,
        seed=7,
    )
