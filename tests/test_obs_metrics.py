"""Counters, gauges, histograms, and the registry's rendering."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1)


class TestGauge:
    def test_starts_nan_then_tracks_last_set(self):
        g = Gauge("occupancy")
        assert math.isnan(g.value)
        g.set(3.5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucketing_and_mean(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx((0.5 + 5 + 5 + 50 + 500) / 5)

    def test_quantiles_have_bucket_resolution(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        for _ in range(99):
            h.observe(5)
        h.observe(50)
        assert h.quantile(0.5) <= 10
        assert h.quantile(0.99) <= 10
        assert h.quantile(1.0) <= 100

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("lat").quantile(0.5))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")

    def test_name_collision_across_types_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("events.write").inc(10)
        reg.gauge("run.wa").set(3.5)
        reg.histogram("occ").observe(4)
        snap = reg.snapshot()
        assert snap["events.write"] == 10
        assert snap["run.wa"] == 3.5
        rendered = reg.render()
        assert "events.write" in rendered
        assert "run.wa" in rendered
        assert "occ" in rendered
