"""Unit tests for the Workload contract and experiment plumbing."""

import pytest

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.errors import WorkloadError
from repro.experiments.common import (
    MANUAL_MISUSE_SITES,
    endorsed_patches,
    patch_all_sites,
    run_variants,
)
from repro.workloads.microbench import Listing1
from repro.workloads.nas import FTWorkload


class TestWorkloadContract:
    def test_site_lookup(self):
        workload = Listing1()
        assert workload.site("listing1.element").function == "listing1_loop"
        with pytest.raises(WorkloadError):
            workload.site("nope")

    def test_run_reports_patch_summary(self, tiny_machine_a):
        workload = Listing1(element_size=256, num_elements=64, iterations=50)
        result = workload.run(
            tiny_machine_a, PatchConfig({"listing1.element": PrestoreMode.CLEAN})
        )
        assert "listing1.element=clean" in result.patch_summary
        baseline = Listing1(element_size=256, num_elements=64, iterations=50).run(
            tiny_machine_a
        )
        assert baseline.patch_summary == "baseline"

    def test_same_seed_is_deterministic(self, tiny_machine_a):
        def cycles():
            w = Listing1(element_size=256, num_elements=64, iterations=100)
            return w.run(tiny_machine_a, seed=77).run.cycles

        assert cycles() == cycles()

    def test_different_seed_differs(self, tiny_machine_a):
        def cycles(seed):
            w = Listing1(element_size=256, num_elements=64, iterations=100)
            return w.run(tiny_machine_a, seed=seed).run.cycles

        assert cycles(1) != cycles(2)


class TestExperimentPatching:
    def test_patch_all_sites(self):
        workload = FTWorkload()
        config = patch_all_sites(workload, PrestoreMode.CLEAN)
        assert config.mode("ft.cffts1") is PrestoreMode.CLEAN
        assert config.mode("ft.fftz2") is PrestoreMode.CLEAN

    def test_endorsed_patches_skip_misuse_sites(self):
        workload = FTWorkload()
        config = endorsed_patches(workload, PrestoreMode.CLEAN)
        assert config.mode("ft.cffts1") is PrestoreMode.CLEAN
        assert config.mode("ft.fftz2") is PrestoreMode.NONE
        assert "ft.fftz2" in MANUAL_MISUSE_SITES

    def test_run_variants_covers_modes(self, tiny_machine_a):
        results = run_variants(
            lambda: Listing1(element_size=256, num_elements=64, iterations=60),
            tiny_machine_a,
            (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP),
        )
        assert set(results) == {PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP}
        assert all(r.cycles > 0 for r in results.values())
