"""ServingWorkload: latency accounting, determinism, fault composition."""

import functools
import json
from types import SimpleNamespace

import pytest

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.errors import WorkloadError
from repro.faults.harness import run_with_faults
from repro.faults.plan import FaultPlan
from repro.runner import execute_cells
from repro.runner.grid import Grid
from repro.runner.monitor import SweepMonitor
from repro.sim.machine import machine_a
from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.serving import ServingWorkload, latency_bounds
from repro.workloads.kv.ycsb import YCSBSpec

SLO = 10_000.0


def _spec(operations=300, num_keys=128, value_size=256):
    return YCSBSpec(mix="A", num_keys=num_keys, operations=operations, value_size=value_size)


def _workload(**kwargs):
    defaults = dict(
        spec=_spec(),
        clients=2,
        arrival=ArrivalSpec(rate_per_kcycle=0.25),
        slo_cycles=SLO,
    )
    defaults.update(kwargs)
    return ServingWorkload(**defaults)


#: Picklable factory for the worker-count identity test.
_FACTORY = functools.partial(
    ServingWorkload,
    spec=_spec(),
    clients=2,
    arrival=ArrivalSpec(rate_per_kcycle=0.25),
    slo_cycles=SLO,
)


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            _workload(clients=0)
        with pytest.raises(WorkloadError):
            _workload(store="rocksdb")
        with pytest.raises(WorkloadError):
            _workload(slo_cycles=0.0)

    def test_rejects_more_clients_than_cores(self):
        workload = _workload(clients=64)
        with pytest.raises(WorkloadError):
            workload.run(machine_a(), PatchConfig.baseline(), seed=1)

    def test_latency_bounds_reject_nonpositive_slo(self):
        with pytest.raises(WorkloadError):
            latency_bounds(0.0)
        bounds = latency_bounds(SLO)
        assert bounds == tuple(sorted(bounds))
        assert SLO in bounds


class TestServingExtras:
    def test_result_reports_latency_slo_and_durability(self):
        workload = _workload()
        result = workload.run(machine_a(), PatchConfig.baseline(), seed=7).run
        serving = result.extra["serving"]
        assert serving["ops_scheduled"] == 300
        assert serving["ops_completed"] == 300
        assert serving["latency_p50"] > 0
        assert serving["latency_p50"] <= serving["latency_p99"] <= serving["latency_p999"]
        assert serving["latency_p999"] <= serving["latency_max"]
        assert serving["slo_cycles"] == SLO
        assert serving["slo_violations"] >= 0
        assert serving["slo_violation_rate"] is not None
        assert serving["acked_writes"] > 0
        hist = serving["histogram"]
        assert hist["bounds"] == list(latency_bounds(SLO))
        assert sum(hist["counts"]) == 300
        # The whole extra must survive the canonical JSON round-trip.
        json.loads(result.to_json())

    def test_fast_path_bit_identical_to_reference(self):
        fast = _workload().run(
            machine_a(), PatchConfig.baseline(), seed=11, streams=True
        ).run
        reference = _workload().run(
            machine_a(), PatchConfig.baseline(), seed=11, streams=False
        ).run
        assert fast.to_json() == reference.to_json()

    def test_reference_env_var_matches_fast_path(self, monkeypatch):
        fast = _workload().run(machine_a(), PatchConfig.baseline(), seed=13).run
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        reference = _workload().run(machine_a(), PatchConfig.baseline(), seed=13).run
        assert fast.to_json() == reference.to_json()

    def test_fresh_instances_reproduce(self):
        a = _workload().run(machine_a(), PatchConfig.baseline(), seed=5).run
        b = _workload().run(machine_a(), PatchConfig.baseline(), seed=5).run
        assert a.to_json() == b.to_json()
        c = _workload().run(machine_a(), PatchConfig.baseline(), seed=6).run
        assert a.to_json() != c.to_json()


class TestWorkerCountIdentity:
    def test_results_identical_at_any_worker_count(self):
        grid = Grid(
            factories=[_FACTORY],
            machines=[machine_a()],
            modes=(PrestoreMode.NONE, PrestoreMode.CLEAN),
            seeds=[21],
        )
        serial = execute_cells(grid.cells(), workers=1)
        pooled = execute_cells(grid.cells(), workers=2)
        assert [o.result_json for o in serial] == [o.result_json for o in pooled]


class TestFaultComposition:
    def _crash_plan(self, workload):
        horizon = workload.arrival.expected_horizon_cycles(workload.spec.operations)
        return FaultPlan.crash_at_cycle(0.6 * horizon)

    def test_crash_under_none_loses_acked_writes(self):
        workload = _workload()
        report = run_with_faults(
            workload,
            machine_a(),
            self._crash_plan(workload),
            patches=PatchConfig.baseline(),
            seed=31,
        )
        assert report.crashed
        serving = report.result.extra["serving"]
        assert 0 < serving["ops_completed"] < 300
        assert serving["acked_writes"] > 0
        assert report.recovery is not None
        assert report.recovery["lost_count"] > 0  # the unsafe-ack window

    def test_crash_under_clean_loses_nothing(self):
        from repro.experiments.common import endorsed_patches

        workload = _workload()
        report = run_with_faults(
            workload,
            machine_a(),
            self._crash_plan(workload),
            patches=endorsed_patches(workload, PrestoreMode.CLEAN),
            seed=31,
        )
        assert report.crashed
        assert report.result.extra["serving"]["acked_writes"] > 0
        assert report.recovery is not None
        assert report.recovery["ok"]
        assert report.recovery["lost_count"] == 0


class TestGridFaultPlanAxis:
    def test_axis_expands_row_major_with_seeds_fastest(self):
        plan = FaultPlan.crash_at_cycle(1000.0)
        grid = Grid(
            factories=[_FACTORY],
            machines=[machine_a()],
            modes=(PrestoreMode.NONE,),
            fault_plans=[None, plan],
            seeds=[1, 2],
        )
        cells = grid.cells()
        assert len(grid) == len(cells) == 4
        assert [(c.fault_plan, c.seed) for c in cells] == [
            (None, 1), (None, 2), (plan, 1), (plan, 2),
        ]

    def test_default_axis_is_plain_runs(self):
        grid = Grid(factories=[_FACTORY], machines=[machine_a()])
        assert all(cell.fault_plan is None for cell in grid.cells())


class TestMonitorServingFold:
    @staticmethod
    def _result(slo=SLO, ops=10, violations=2, mean=100.0):
        bounds = list(latency_bounds(slo))
        counts = [0] * (len(bounds) + 1)
        counts[0] = ops
        return SimpleNamespace(
            extra={
                "serving": {
                    "ops_completed": ops,
                    "slo_violations": violations,
                    "latency_mean": mean,
                    "histogram": {"bounds": bounds, "counts": counts},
                }
            }
        )

    def test_fold_accumulates_counters_and_histogram(self):
        monitor = SweepMonitor()
        monitor._fold_serving(self._result(ops=10, violations=2))
        monitor._fold_serving(self._result(ops=5, violations=1))
        assert monitor.serving_ops == 15
        assert monitor.serving_violations == 3
        hist = monitor.registry.get("serving.latency_cycles")
        assert hist.count == 15
        assert hist.total == pytest.approx(1500.0)
        assert "serving" in monitor.render_dashboard()

    def test_fold_refuses_mismatched_bounds(self):
        monitor = SweepMonitor()
        monitor._fold_serving(self._result(slo=SLO, ops=10))
        monitor._fold_serving(self._result(slo=2 * SLO, ops=4))
        # Counters still aggregate; the histogram keeps its first bounds.
        assert monitor.serving_ops == 14
        assert monitor.registry.get("serving.latency_cycles").count == 10

    def test_fold_ignores_results_without_serving(self):
        monitor = SweepMonitor()
        monitor._fold_serving(SimpleNamespace(extra={}))
        assert monitor.serving_ops == 0
        assert monitor.registry.get("serving.latency_cycles") is None

    def test_live_sweep_folds_cached_and_fresh(self, tmp_path):
        grid = Grid(
            factories=[_FACTORY],
            machines=[machine_a()],
            modes=(PrestoreMode.NONE,),
            seeds=[41],
        )
        fresh = SweepMonitor()
        execute_cells(grid.cells(), events=fresh, cache=str(tmp_path))
        assert fresh.serving_ops == 300
        warm = SweepMonitor()
        outcomes = execute_cells(grid.cells(), events=warm, cache=str(tmp_path))
        assert [o.status for o in outcomes] == ["cached"]
        assert warm.serving_ops == 300  # cache hits fold too
