"""Perfetto/Chrome trace export: format validity, tracks, flow events."""

import json

import pytest

from repro.obs.collector import ObsCollector
from repro.obs.trace import TraceBuilder
from repro.workloads.microbench import Listing1
from repro.workloads.x9 import X9Workload


@pytest.fixture(scope="module")
def x9_trace(tiny_machine_b_module):
    collector = ObsCollector(interval=500.0, trace=True)
    X9Workload(messages=120).run(tiny_machine_b_module, seed=5, obs=collector)
    return json.loads(collector.trace.to_json())


@pytest.fixture(scope="module")
def tiny_machine_b_module():
    from repro.sim.cache import CacheLevelSpec
    from repro.sim.machine import MachineSpec
    from repro.sim.memory import fpga_spec

    return MachineSpec(
        name="tiny-B",
        line_size=128,
        memory_model="weak",
        cache_levels=(
            CacheLevelSpec(name="L1", size_bytes=16 * 1024, ways=4, hit_latency=4),
            CacheLevelSpec(name="L2", size_bytes=64 * 1024, ways=8, hit_latency=24, hashed_index=True),
        ),
        device=fpga_spec(read_latency=100, bandwidth=2.0, line_size=128),
        replacement_policy="arm-like",
        num_cores=4,
        seed=7,
    )


class TestTraceFormat:
    def test_loads_cleanly_and_has_events(self, x9_trace):
        assert isinstance(x9_trace["traceEvents"], list)
        assert len(x9_trace["traceEvents"]) > 0
        assert x9_trace["otherData"]["generator"] == "repro.obs"

    def test_every_event_is_well_formed(self, x9_trace):
        for event in x9_trace["traceEvents"]:
            assert {"ph", "pid", "ts"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_metadata_names_cores_and_device(self, x9_trace):
        meta = [e for e in x9_trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert "cores" in names
        assert any(n.startswith("device") for n in names)
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert any(e["args"]["name"].startswith("core") for e in threads)

    def test_counter_tracks_present(self, x9_trace):
        counters = {e["name"] for e in x9_trace["traceEvents"] if e["ph"] == "C"}
        assert "media write bandwidth (B/cyc)" in counters
        assert "store-buffer occupancy" in counters
        assert "write amplification" in counters

    def test_store_visibility_flows_paired(self, x9_trace):
        # X9's producer CAS has fence semantics, so the store→visibility
        # flow arrows must close: every started flow id also finishes.
        starts = {e["id"] for e in x9_trace["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"] for e in x9_trace["traceEvents"] if e["ph"] == "f"}
        assert starts
        assert finishes
        assert finishes <= starts
        for e in x9_trace["traceEvents"]:
            if e["ph"] == "f":
                assert e.get("bp") == "e"

    def test_file_write_round_trips(self, tmp_path, tiny_machine_a):
        collector = ObsCollector(interval=300.0, trace=True)
        Listing1(iterations=100).run(tiny_machine_a, seed=3, obs=collector)
        path = tmp_path / "run.trace.json"
        collector.write_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestTraceBuilderLimits:
    def test_event_cap_drops_not_raises(self, tiny_machine_a):
        builder = TraceBuilder(max_events=50)
        Listing1(iterations=200).run(tiny_machine_a, seed=3, obs=builder)
        doc = builder.to_dict()
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) <= 50
        assert doc["otherData"]["dropped_events"] > 0
