"""Unit and property tests for the YCSB generator."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.kv.ycsb import (
    OP_INSERT,
    OP_READ,
    OP_UPDATE,
    YCSB_MIXES,
    YCSBSpec,
    ZipfianGenerator,
)


class TestZipfian:
    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, theta=1.5)

    def test_skew_favours_small_keys(self):
        zipf = ZipfianGenerator(1000, rng=random.Random(1))
        counts = Counter(zipf.next() for _ in range(20_000))
        assert counts[0] > counts.get(500, 0)
        assert counts[0] > 20_000 * 0.02  # the head is hot

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(100, rng=random.Random(7))
        b = ZipfianGenerator(100, rng=random.Random(7))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]


@given(n=st.integers(min_value=1, max_value=100_000), seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_zipfian_in_range(n, seed):
    zipf = ZipfianGenerator(n, rng=random.Random(seed))
    for _ in range(50):
        assert 0 <= zipf.next() < n


class TestYCSBSpec:
    def test_rejects_unknown_mix(self):
        with pytest.raises(WorkloadError):
            YCSBSpec(mix="Z")

    @pytest.mark.parametrize("mix", sorted(YCSB_MIXES))
    def test_mix_ratios_approximate(self, mix):
        spec = YCSBSpec(mix=mix, num_keys=1000, operations=5000)
        ops = Counter(op for op, _ in spec.operation_stream(random.Random(3)))
        total = sum(ops.values())
        read_frac, update_frac, insert_frac = YCSB_MIXES[mix]
        assert ops.get(OP_READ, 0) / total == pytest.approx(read_frac, abs=0.03)
        assert ops.get(OP_UPDATE, 0) / total == pytest.approx(update_frac, abs=0.03)
        assert ops.get(OP_INSERT, 0) / total == pytest.approx(insert_frac, abs=0.03)

    def test_concurrent_clients_insert_disjoint_keys(self):
        spec = YCSBSpec(mix="D", num_keys=100, operations=2000)
        inserted = [
            {k for op, k in spec.operation_stream(random.Random(i), insert_start=100 + i, insert_stride=4) if op == OP_INSERT}
            for i in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not inserted[i] & inserted[j]

    def test_mix_d_reads_recent_keys(self):
        spec = YCSBSpec(mix="D", num_keys=1000, operations=4000, latest_window=32)
        reads = [k for op, k in spec.operation_stream(random.Random(9)) if op == OP_READ]
        assert reads, "mix D must read"
        assert all(k >= 0 for k in reads)

    @pytest.mark.parametrize("clients", [2, 4])
    def test_mix_d_strided_reads_hit_own_inserts_or_preload(self, clients):
        # Regression: the old generator computed the read-latest window in
        # raw key-id units (next_insert_key - 1 - back), so with
        # insert_stride > 1 it read ids inside another client's stride —
        # keys this client never inserted and nobody preloaded.
        spec = YCSBSpec(mix="D", num_keys=100, operations=3000, latest_window=16)
        for client in range(clients):
            inserted = set()
            stream = spec.operation_stream(
                random.Random(31 + client),
                insert_start=spec.num_keys + client,
                insert_stride=clients,
            )
            for op, key in stream:
                if op == OP_INSERT:
                    inserted.add(key)
                elif op == OP_READ and key >= spec.num_keys:
                    assert key in inserted, (
                        f"client {client}/{clients} read un-inserted key {key}"
                    )

    def test_mix_d_read_latest_window_tracks_insert_steps(self):
        # Reads above the preload must land within latest_window insert
        # *steps* of this client's most recent insert.
        spec = YCSBSpec(mix="D", num_keys=50, operations=3000, latest_window=8)
        stride, start = 4, 51
        order = {}
        stream = spec.operation_stream(random.Random(5), insert_start=start, insert_stride=stride)
        for op, key in stream:
            if op == OP_INSERT:
                order[key] = len(order)
            elif op == OP_READ and key >= spec.num_keys:
                age = len(order) - 1 - order[key]
                assert 0 <= age <= spec.latest_window


class TestZetaIncremental:
    def test_zeta_matches_direct_sum(self):
        theta = 0.77
        for n in (1, 2, 5, 4095, 4096, 4097, 10_000):
            direct = sum(1.0 / (i ** theta) for i in range(1, n + 1))
            assert ZipfianGenerator._zeta(n, theta) == direct

    def test_zeta_path_independent(self):
        # The float value for a given (n, theta) must not depend on which
        # other n values were requested first (workers see different cell
        # orders; zipfian draws must stay bit-identical everywhere).
        theta = 0.83
        probe = 9_001
        fresh = sum(1.0 / (i ** theta) for i in range(1, probe + 1))
        ZipfianGenerator._zeta(123, theta)
        ZipfianGenerator._zeta(20_000, theta)
        assert ZipfianGenerator._zeta(probe, theta) == fresh

    def test_zeta_extends_incrementally(self):
        # A big-n construction must not redo the full harmonic sum when a
        # nearby prefix is already cached: the second call may only pay
        # the tail past the last checkpoint block.
        theta = 0.91
        ZipfianGenerator(60_000, theta=theta, rng=random.Random(0))
        before = dict(ZipfianGenerator._zeta_cache)
        blocks_before = len(ZipfianGenerator._zeta_blocks[theta])
        ZipfianGenerator(59_999, theta=theta, rng=random.Random(0))
        assert len(ZipfianGenerator._zeta_blocks[theta]) == blocks_before
        assert (59_999, theta) in ZipfianGenerator._zeta_cache
        assert before.keys() <= ZipfianGenerator._zeta_cache.keys()

    def test_c_is_read_only(self):
        spec = YCSBSpec(mix="C", num_keys=100, operations=500)
        assert all(op == OP_READ for op, _ in spec.operation_stream(random.Random(1)))
