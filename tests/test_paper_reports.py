"""The paper's verbatim DirtBuster outputs, reproduced end to end.

Section 7.2.1 prints DirtBuster's report for TensorFlow's evaluator:
two size classes — big tensors never reused ("re-read inf - re-write
inf") and 240B tensors re-read almost immediately ("re-read 2") — and a
*clean* verdict.  Section 7.2.2 prints MG's psinv/resid reports.  These
tests run the real pipeline and check the same structure comes out.
"""

import math

import pytest

from repro.core.prestore import PrestoreMode
from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig
from repro.sim.machine import machine_a
from repro.workloads.nas import MGWorkload
from repro.workloads.tensorflow_sim import SMALL_TENSOR, TensorFlowWorkload


@pytest.fixture(scope="module")
def dirtbuster():
    return DirtBuster(DirtBusterConfig(sampling_period=53))


class TestTensorFlowReport:
    @pytest.fixture(scope="class")
    def report(self):
        db = DirtBuster(DirtBusterConfig(sampling_period=53))
        workload = TensorFlowWorkload(
            batch_size=16, iterations=1, threads=2, large_tensor_kb=64
        )
        return db.analyze(workload, machine_a())

    def test_evaluator_found_and_cleaned(self, report):
        rec = report.recommendation_for("Eigen::TensorEvaluator::run")
        assert rec is not None
        assert rec.choice is PrestoreMode.CLEAN

    def test_two_size_classes(self, report):
        """Big tensors and small ~240B tensors re-read within a couple of
        instructions, like the paper's report.  (Deviation from the
        paper's "re-read inf" for the big class: our port's evalPacket
        dependency — the very reason skipping backfires — makes the big
        tensors look quickly re-read too; the function verdict is the
        same.)"""
        rec = report.recommendation_for("Eigen::TensorEvaluator::run")
        buckets = rec.patterns.buckets
        sizes = sorted(b.size for b in buckets)
        assert sizes[0] <= 2 * SMALL_TENSOR  # the small class
        assert sizes[-1] >= 16 * 1024  # the large class
        small = min(buckets, key=lambda b: b.size)
        large = max(buckets, key=lambda b: b.size)
        assert small.reread <= 16  # "re-read 2" at our granularity
        assert math.isinf(large.rewrite)  # written once per iteration

    def test_location_is_the_paper_site(self, report):
        rec = report.recommendation_for("Eigen::TensorEvaluator::run")
        assert rec.patterns.file == "TensorExecutor.h"
        assert rec.patterns.line == 272

    def test_optimizer_not_recommended(self, report):
        rec = report.recommendation_for("apply_gradient_descent")
        if rec is not None:  # only when it crossed the store-share bar
            assert rec.choice is PrestoreMode.NONE


class TestMGReport:
    @pytest.fixture(scope="class")
    def report(self):
        db = DirtBuster(DirtBusterConfig(sampling_period=53))
        return db.analyze(MGWorkload(grid=32, iterations=2, threads=4), machine_a())

    def test_resid_clean_psinv_skip(self, report):
        resid = report.recommendation_for("resid")
        psinv = report.recommendation_for("psinv")
        assert resid is not None and resid.choice is PrestoreMode.CLEAN
        assert psinv is not None and psinv.choice is PrestoreMode.SKIP

    def test_both_fully_sequential(self, report):
        """Paper: 'Perc. Seq. Writes: 100%' for both functions."""
        for fn in ("resid", "psinv"):
            rec = report.recommendation_for(fn)
            assert rec.patterns.pct_sequential > 0.95

    def test_locations_match_paper(self, report):
        assert report.recommendation_for("resid").patterns.line == 544
        assert report.recommendation_for("psinv").patterns.line == 614

    def test_resid_reread_within_cache_horizon(self, report):
        """Paper: re-read 23.8K instructions (finite, cache-resident)."""
        resid = report.recommendation_for("resid")
        assert resid.patterns.mean_reread < 100_000
        psinv = report.recommendation_for("psinv")
        assert psinv.patterns.mean_reread > 100_000 or math.isinf(
            psinv.patterns.mean_reread
        )
