"""The batched STREAM vocabulary cannot bypass the sanitizer passes.

Each dynamic pass must produce identical findings whether it is fed the
per-access sequence (what the machine unrolls for stream-blind
observers) or the batched STREAM events directly (what a batch-aware
fan-out wrapper would deliver).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import Diagnostic
from repro.sanitize.prestore_lint import PrestoreLint
from repro.sanitize.races import RaceDetector
from repro.sim.event import CodeSite, Event, EventKind

WRITER = CodeSite(function="writer", file="stream.c", line=3)
READER = CodeSite(function="reader", file="stream.c", line=9)

LINE = 64


def _write_stream(addr: int, size: int, nontemporal: bool = False) -> Event:
    return Event.stream(
        EventKind.WRITE, addr, size, chunk=LINE, nontemporal=nontemporal, site=WRITER
    )


def _read_stream(addr: int, size: int) -> Event:
    return Event.stream(EventKind.READ, addr, size, chunk=LINE, site=READER)


def _feed(detector, schedule: List[Tuple[int, Event, int]], expand: bool) -> List[Diagnostic]:
    """Run ``schedule`` through ``detector``, batched or pre-unrolled."""
    for core_id, event, instr in schedule:
        if expand:
            for offset, access in enumerate(event.accesses()):
                detector.record(core_id, access, instr + offset, 0.0)
        else:
            detector.record(core_id, event, instr, 0.0)
    return detector.diagnostics()


def test_passes_declare_stream_blindness() -> None:
    """The machine unrolls streams unless *every* observer opts in; the
    passes must never opt in."""
    assert RaceDetector.accepts_streams is False
    assert PrestoreLint.accepts_streams is False


def test_race_detector_streams_equal_unrolled() -> None:
    # Core 0 stream-writes four lines; core 1 stream-reads them with no
    # ordering edge: a write-read race on every line.
    schedule = [
        (0, _write_stream(0, 4 * LINE), 0),
        (1, _read_stream(0, 4 * LINE), 10),
    ]
    batched = _feed(RaceDetector(), schedule, expand=False)
    unrolled = _feed(RaceDetector(), schedule, expand=True)
    assert batched == unrolled
    assert any(d.rule == "race.write-read" for d in batched)
    (finding,) = [d for d in batched if d.rule == "race.write-read"]
    assert finding.count == 4  # one per expanded access, none skipped


def test_race_detector_stream_write_write() -> None:
    schedule = [
        (0, _write_stream(0, 2 * LINE), 0),
        (1, _write_stream(0, 2 * LINE), 10),
    ]
    batched = _feed(RaceDetector(), schedule, expand=False)
    unrolled = _feed(RaceDetector(), schedule, expand=True)
    assert batched == unrolled
    assert any(d.rule == "race.write-write" for d in batched)


def test_prestore_lint_streams_equal_unrolled() -> None:
    # Non-temporal stream write immediately re-read: skip-reread on
    # every line, identical under both vocabularies.
    schedule = [
        (0, _write_stream(0, 4 * LINE, nontemporal=True), 0),
        (0, _read_stream(0, 4 * LINE), 4),
    ]
    batched = _feed(PrestoreLint(min_count=1, min_share=0.0), schedule, expand=False)
    unrolled = _feed(PrestoreLint(min_count=1, min_share=0.0), schedule, expand=True)
    assert batched == unrolled
    assert any(d.rule == "prestore.skip-reread" for d in batched)
    (finding,) = [d for d in batched if d.rule == "prestore.skip-reread"]
    assert finding.count == 4


def test_stream_instruction_indexing_matches_expansion() -> None:
    """Indices attributed to expanded accesses advance one per access —
    the same weighting the machine's unrolled execution gives them."""
    lint = PrestoreLint(min_count=1, min_share=0.0)
    lint.record(0, _write_stream(0, 2 * LINE, nontemporal=True), 0, 0.0)
    # The second access retired at index 1, so a read at index 2 is one
    # instruction after it, not two after the stream's start.
    lint.record(0, Event(EventKind.READ, addr=LINE, size=8, site=READER), 2, 0.0)
    (finding,) = [d for d in lint.diagnostics() if d.rule == "prestore.skip-reread"]
    assert finding.count == 1
