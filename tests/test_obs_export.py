"""The metrics exporter: determinism, NaN safety, names, merge, round trip."""

import json
import math

import pytest

from repro.obs.export import (
    escape_help,
    export_metric_name,
    export_snapshot,
    nullsafe_value,
    parse_openmetrics,
    render_jsonl,
    render_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("events.write", help="store events").inc(42)
    reg.counter("events.read").inc(7)
    reg.gauge("run.cycles", help="simulated cycles").set(1234.5)
    reg.gauge("run.wa_ratio", help="zero-denominator ratio").set(float("nan"))
    hist = reg.histogram("lat.cell_s", bounds=(0.1, 1.0, 10.0), help="cell latency")
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(v)
    return reg


class TestMetricNames:
    def test_dots_become_underscores(self):
        assert export_metric_name("events.write") == "events_write"

    def test_leading_digit_gains_prefix(self):
        assert export_metric_name("9p.latency") == "_9p_latency"

    def test_colons_survive(self):
        assert export_metric_name("ns:metric") == "ns:metric"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            export_metric_name("")

    def test_registry_rejects_whitespace_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.gauge("")

    def test_sanitisation_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a_b").inc()
        with pytest.raises(ValueError, match="collide"):
            render_openmetrics(reg)

    def test_help_escaping(self):
        assert escape_help("line\nbreak\\slash") == "line\\nbreak\\\\slash"


class TestDeterminism:
    def test_render_is_byte_stable(self):
        reg = _populated_registry()
        assert render_openmetrics(reg) == render_openmetrics(reg)
        assert render_jsonl(reg) == render_jsonl(reg)

    def test_merged_worker_registries_render_identically(self):
        # The fleet-aggregation contract: however the same observations
        # were sharded across worker registries, the merged exposition
        # is byte-identical to single-registry collection.
        reference = _populated_registry()
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.counter("events.write", help="store events").inc(40)
        shard_b.counter("events.write", help="store events").inc(2)
        shard_a.counter("events.read").inc(3)
        shard_b.counter("events.read").inc(4)
        shard_b.gauge("run.cycles", help="simulated cycles").set(1234.5)
        shard_a.gauge("run.wa_ratio", help="zero-denominator ratio").set(float("nan"))
        shard_b.gauge("run.wa_ratio", help="zero-denominator ratio").set(float("nan"))
        for shard, values in ((shard_a, (0.05, 0.5)), (shard_b, (0.5, 5.0, 50.0))):
            hist = shard.histogram("lat.cell_s", bounds=(0.1, 1.0, 10.0), help="cell latency")
            for v in values:
                hist.observe(v)
        merged = MetricsRegistry().merge(shard_a).merge(shard_b)
        assert render_openmetrics(merged) == render_openmetrics(reference)
        assert export_snapshot(merged) == export_snapshot(reference)

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        b.histogram("h", bounds=(1.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError, match="bounds"):
            a.merge(b)

    def test_merge_counters_add_not_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        assert a.merge(b).counter("c").value == 7

    def test_merge_gauge_keeps_set_value_over_nan(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(5.0)
        b.gauge("g")  # never set: NaN must not clobber the observation
        assert a.merge(b).gauge("g").value == 5.0


class TestNanSafety:
    def test_nan_gauge_omits_sample_keeps_type(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(float("nan"))
        text = render_openmetrics(reg)
        assert "# TYPE ratio gauge" in text
        assert not any(line.startswith("ratio ") for line in text.splitlines())
        assert not any(tok.lower() == "nan" for tok in text.split())

    def test_jsonl_serialises_nan_as_null(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(float("nan"))
        (line,) = render_jsonl(reg).splitlines()
        assert json.loads(line)["value"] is None
        assert "nan" not in line.lower()

    def test_histogram_inf_quantile_is_json_safe(self):
        # p99 above the last bound is +inf; JSON surfaces must encode it
        # losslessly without emitting an invalid `Infinity` literal.
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,)).observe(100.0)
        snap = export_snapshot(reg)["h"]
        assert snap["p99"] == "+Inf"
        json.loads(render_jsonl(reg))  # must not raise

    def test_nullsafe_value_helper(self):
        assert nullsafe_value(None) is None
        assert nullsafe_value(float("nan")) is None
        assert nullsafe_value(2.5) == 2.5


class TestRoundTrip:
    def test_parse_recovers_exact_snapshot(self):
        reg = _populated_registry()
        assert parse_openmetrics(render_openmetrics(reg)) == export_snapshot(reg)

    def test_round_trip_with_empty_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("empty.h", bounds=(1.0, 2.0), help="never observed")
        assert parse_openmetrics(render_openmetrics(reg)) == export_snapshot(reg)

    def test_round_trip_with_nan_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("seen").set(3.0)
        reg.gauge("unseen")
        parsed = parse_openmetrics(render_openmetrics(reg))
        assert parsed == {"seen": 3.0, "unseen": None}

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_openmetrics("!!! not a metric line\n")

    def test_counter_renders_with_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("events.write").inc(3)
        text = render_openmetrics(reg)
        assert "events_write_total 3" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 1.5, 5.0):
            hist.observe(v)
        lines = render_openmetrics(reg).splitlines()
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 3' in lines
        assert 'h_bucket{le="+Inf"} 4' in lines
        assert "h_count 4" in lines

    def test_extra_keys_merge_into_every_jsonl_line(self):
        reg = _populated_registry()
        for line in render_jsonl(reg, extra={"sweep": 2}).splitlines():
            assert json.loads(line)["sweep"] == 2


class TestSnapshotShape:
    def test_snapshot_uses_exposition_names(self):
        snap = export_snapshot(_populated_registry())
        assert set(snap) == {
            "events_write", "events_read", "run_cycles", "run_wa_ratio", "lat_cell_s",
        }
        assert snap["run_wa_ratio"] is None
        assert snap["lat_cell_s"]["count"] == 5.0
        assert not math.isnan(snap["run_cycles"])
