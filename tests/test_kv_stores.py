"""Functional tests: the KV stores must behave like dicts while
emitting the simulated memory traffic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.errors import WorkloadError
from repro.workloads.kv.clht import CLHTStore, CLHTWorkload, SLOTS_PER_BUCKET
from repro.workloads.kv.masstree import FANOUT, MasstreeStore, MasstreeWorkload
from repro.workloads.kv.values import ValuePool, craft_value
from repro.workloads.kv.ycsb import YCSBSpec
from repro.workloads.memapi import Allocator, ThreadCtx


def _ctx(line=64):
    return ThreadCtx(tid=0, allocator=Allocator(line), line_size=line, seed=9)


def _drain(gen):
    return list(gen)


class TestValuePool:
    def test_fresh_slots_first_then_recycling(self):
        pool = ValuePool(Allocator(64), slots=4, value_size=64)
        first = [pool.alloc() for _ in range(4)]
        assert sorted(first) == [0, 1, 2, 3]
        pool.free(first[0])
        pool.free(first[1])
        assert pool.alloc() == first[0]  # FIFO recycling
        assert pool.alloc() == first[1]

    def test_fresh_order_is_shuffled(self):
        pool = ValuePool(Allocator(64), slots=64, value_size=64)
        order = [pool.alloc() for _ in range(64)]
        assert order != sorted(order)

    def test_exhaustion_raises(self):
        pool = ValuePool(Allocator(64), slots=1, value_size=64)
        pool.alloc()
        with pytest.raises(WorkloadError):
            pool.alloc()

    def test_addr_bounds(self):
        pool = ValuePool(Allocator(64), slots=2, value_size=128)
        assert pool.addr(1) == pool.addr(0) + 128 or pool.addr(1) != pool.addr(0)
        with pytest.raises(WorkloadError):
            pool.addr(5)

    def test_craft_value_modes(self):
        t = _ctx()
        pool = ValuePool(t.allocator, slots=4, value_size=256)
        slot = pool.alloc()
        plain = _drain(craft_value(t, pool, slot, PrestoreMode.NONE))
        cleaned = _drain(craft_value(t, pool, slot, PrestoreMode.CLEAN))
        skipped = _drain(craft_value(t, pool, slot, PrestoreMode.SKIP))
        assert len(cleaned) == len(plain) + 1  # the prestore call
        assert all(ev.nontemporal for ev in skipped if ev.kind.value == "write")
        assert all(ev.site.function == "craft_value" for ev in plain)


class TestCLHTStore:
    def _store(self, buckets=16, slots=64, vsize=64):
        alloc = Allocator(64)
        pool = ValuePool(alloc, slots=slots, value_size=vsize)
        return CLHTStore(alloc, num_buckets=buckets, value_pool=pool, line_size=64), pool

    def test_put_get_roundtrip(self):
        store, pool = self._store()
        t = _ctx()
        _drain(store.put(t, 42, PrestoreMode.NONE))
        assert 42 in store.shadow
        events = _drain(store.get(t, 42))
        assert any(ev.kind.value == "read" for ev in events)

    def test_overflow_chains_preserve_entries(self):
        store, pool = self._store(buckets=1, slots=64)
        t = _ctx()
        for key in range(3 * SLOTS_PER_BUCKET):
            _drain(store.put(t, key, PrestoreMode.NONE))
        assert len(store.shadow) == 3 * SLOTS_PER_BUCKET

    def test_put_reuses_slot_frees_old(self):
        store, pool = self._store()
        t = _ctx()
        _drain(store.put(t, 1, PrestoreMode.NONE))
        first = store.shadow[1]
        _drain(store.put(t, 1, PrestoreMode.NONE))
        assert store.shadow[1] != first  # new slot, old freed

    def test_put_takes_bucket_lock(self):
        store, pool = self._store()
        t = _ctx()
        events = _drain(store.put(t, 7, PrestoreMode.NONE))
        atomics = [ev for ev in events if ev.kind.value == "atomic"]
        assert len(atomics) == 2  # lock + unlock


class TestMasstreeStore:
    def _store(self, slots=512, vsize=64):
        alloc = Allocator(64)
        pool = ValuePool(alloc, slots=slots, value_size=vsize)
        return MasstreeStore(alloc, pool, capacity_nodes=256), pool

    def test_put_get_roundtrip(self):
        store, pool = self._store()
        t = _ctx()
        _drain(store.put(t, 42, PrestoreMode.NONE))
        assert store.lookup(42) == store.shadow[42]

    def test_splits_keep_lookup_working(self):
        store, pool = self._store()
        t = _ctx()
        keys = list(range(5 * FANOUT))
        random.Random(2).shuffle(keys)
        for key in keys:
            _drain(store.put(t, key, PrestoreMode.NONE))
        assert store.depth() >= 2
        for key in keys:
            assert store.lookup(key) == store.shadow[key]

    def test_read_protocol_uses_load_fences(self):
        store, pool = self._store()
        store.preload(1, pool.alloc())
        t = _ctx()
        events = _drain(store.get(t, 1))
        fences = [ev for ev in events if ev.kind.value == "fence"]
        assert fences and all(ev.fence_scope == "load" for ev in fences)

    def test_put_locks_leaf(self):
        store, pool = self._store()
        t = _ctx()
        events = _drain(store.put(t, 9, PrestoreMode.NONE))
        assert sum(1 for ev in events if ev.kind.value == "atomic") == 2


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "del-ish", "get"]), st.integers(0, 40)),
        max_size=120,
    )
)
@settings(max_examples=30, deadline=None)
def test_masstree_matches_dict(ops):
    """Property: Masstree's shadowed state equals a dict under random puts."""
    alloc = Allocator(64)
    pool = ValuePool(alloc, slots=4096, value_size=64)
    store = MasstreeStore(alloc, pool, capacity_nodes=2048)
    t = _ctx()
    model = {}
    for op, key in ops:
        if op == "put":
            _drain(store.put(t, key, PrestoreMode.NONE))
            model[key] = store.shadow[key]
        else:
            assert store.lookup(key) == model.get(key)
    assert store.shadow == model


@given(keys=st.lists(st.integers(0, 200), max_size=150))
@settings(max_examples=30, deadline=None)
def test_clht_matches_dict(keys):
    """Property: CLHT's shadow equals a dict after arbitrary puts."""
    alloc = Allocator(64)
    pool = ValuePool(alloc, slots=4096, value_size=64)
    store = CLHTStore(alloc, num_buckets=16, value_pool=pool, line_size=64, max_overflow=64)
    t = _ctx()
    model = {}
    for key in keys:
        _drain(store.put(t, key, PrestoreMode.NONE))
        model[key] = store.shadow[key]
    assert store.shadow == model


class TestKVWorkloads:
    @pytest.mark.parametrize("cls", [CLHTWorkload, MasstreeWorkload])
    def test_runs_on_machine_a(self, cls, tiny_machine_a):
        spec = YCSBSpec(mix="A", num_keys=128, operations=120, value_size=128)
        workload = cls(spec, threads=2)
        result = workload.run(tiny_machine_a, PatchConfig.baseline())
        assert result.run.work_items == 120

    def test_modes_change_traffic(self, tiny_machine_a):
        spec = YCSBSpec(mix="A", num_keys=256, operations=300, value_size=512)
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
            w = CLHTWorkload(spec, threads=2)
            runs[mode] = w.run(
                tiny_machine_a, PatchConfig({w.SITE.name: mode})
            ).run
        assert (
            runs[PrestoreMode.CLEAN].write_amplification
            < runs[PrestoreMode.NONE].write_amplification
        )
