"""Integration tests: cores, the machine scheduler, and pre-store semantics."""

import pytest

from repro.core.prestore import PrestoreOp
from repro.errors import SimulationError, WorkloadError
from repro.sim.event import Mailbox
from repro.sim.machine import Machine
from repro.workloads.memapi import Program


def _run(spec, *bodies, seed=1):
    program = Program(spec, seed=seed)
    for body in bodies:
        program.spawn(body)
    return program.run()


class TestBasicExecution:
    def test_read_hit_is_cheap(self, tiny_machine_dram):
        def body(t):
            r = t.alloc(64)
            yield t.read(r.base, 8)   # miss
            yield t.read(r.base, 8)   # hit

        result = _run(tiny_machine_dram, body)
        assert result.cache_hits["L1"] >= 1
        assert result.cache_misses["L1"] >= 1

    def test_compute_advances_clock(self, tiny_machine_dram):
        def body(t):
            yield t.compute(1000)

        result = _run(tiny_machine_dram, body)
        assert result.cycles == pytest.approx(1000 * 0.5)
        assert result.instructions == 1000

    def test_store_forwarding(self, tiny_machine_a):
        def body(t):
            r = t.alloc(64)
            yield t.write(r.base, 8)
            yield t.read(r.base, 8)  # forwarded from the store buffer

        result = _run(tiny_machine_a, body)
        # The read must not have gone to memory.
        assert result.device_reads <= 1  # only the write's RFO

    def test_machine_is_single_use(self, tiny_machine_dram):
        machine = Machine(tiny_machine_dram)
        machine.finish()
        with pytest.raises(SimulationError):
            machine.finish()

    def test_too_many_threads_rejected(self, tiny_machine_dram):
        program = Program(tiny_machine_dram)

        def body(t):
            yield t.compute(1)

        for _ in range(tiny_machine_dram.num_cores):
            program.spawn(body)
        with pytest.raises(WorkloadError):
            program.spawn(body)


class TestFencesAndVisibility:
    def test_weak_fence_stalls_on_parked_store(self, tiny_machine_b):
        def body(t):
            r = t.alloc(4096)
            yield t.write(r.addr(1024), 128)
            yield t.fence()

        result = _run(tiny_machine_b, body)
        assert result.total_fence_stall_cycles > 0

    def test_demote_before_work_hides_visibility(self, tiny_machine_b):
        def make(demote):
            def body(t):
                array = t.alloc(64 * 1024)
                scratch = t.alloc(4096)
                yield from t.read_block(scratch.base, scratch.size)
                for i in range(200):
                    addr = array.addr((i * 37 * 128) % (array.size - 128))
                    yield t.write(addr, 128)
                    if demote:
                        yield t.prestore(addr, 128, PrestoreOp.DEMOTE)
                    for j in range(20):
                        yield t.read(scratch.addr((j * 64) % scratch.size), 8)
                    yield t.fence()
            return body

        base = _run(tiny_machine_b, make(False))
        opt = _run(tiny_machine_b, make(True))
        assert opt.total_fence_stall_cycles < base.total_fence_stall_cycles
        assert opt.cycles < base.cycles

    def test_load_fence_is_cheap(self, tiny_machine_b):
        def make(scope):
            def body(t):
                r = t.alloc(4096)
                for i in range(50):
                    yield t.write(r.addr((i * 128) % r.size), 128)
                    yield t.fence(scope=scope)
            return body

        full = _run(tiny_machine_b, make("full"))
        load = _run(tiny_machine_b, make("load"))
        assert load.total_fence_stall_cycles == 0
        assert load.cycles < full.cycles

    def test_tso_fence_mostly_free(self, tiny_machine_a):
        def body(t):
            r = t.alloc(4096)
            yield t.write(r.base, 64)
            yield t.compute(2000)  # visibility completes in the background
            yield t.fence()

        result = _run(tiny_machine_a, body)
        assert result.total_fence_stall_cycles == pytest.approx(0.0)


class TestPrestoreSemantics:
    def test_clean_writes_back_and_keeps_line(self, tiny_machine_a):
        def body(t):
            r = t.alloc(256)
            yield from t.write_block(r.base, 256)
            yield t.prestore(r.base, 256, PrestoreOp.CLEAN)
            yield t.compute(5000)

        program = Program(tiny_machine_a)
        program.spawn(body)
        result = program.run()
        assert result.device_bytes_received >= 256
        # Cleaning propagated the data without invalidating the copies:
        # all four lines are still resident somewhere in the hierarchy.
        hierarchy = program.machine.hierarchy
        base_line = program.allocator.regions[0].base // 64
        assert all(hierarchy.contains(base_line + i) for i in range(4))

    def test_clean_of_unwritten_data_is_noop(self, tiny_machine_a):
        def body(t):
            r = t.alloc(256)
            yield t.prestore(r.base, 256, PrestoreOp.CLEAN)

        result = _run(tiny_machine_a, body)
        assert result.device_bytes_received == 0

    def test_nontemporal_write_bypasses_cache(self, tiny_machine_a):
        def body(t):
            r = t.alloc(256)
            yield from t.write_block(r.base, 256, nontemporal=True)
            yield t.read(r.base, 8)  # must go to memory

        program = Program(tiny_machine_a)
        program.spawn(body)
        result = program.run()
        assert result.device_bytes_received == 256
        assert sum(c.memory_read_cycles for c in result.cores) > 0

    def test_clean_stream_has_no_write_amplification(self, tiny_machine_a):
        def make(clean):
            def body(t):
                r = t.alloc(256 * 1024)
                import random
                rng = random.Random(5)
                for _ in range(400):
                    addr = r.addr(rng.randrange(r.size // 1024) * 1024)
                    yield from t.write_block(addr, 1024)
                    if clean:
                        yield t.prestore(addr, 1024, PrestoreOp.CLEAN)
            return body

        base = _run(tiny_machine_a, make(False))
        clean = _run(tiny_machine_a, make(True))
        assert clean.write_amplification < base.write_amplification
        assert clean.write_amplification == pytest.approx(1.0, abs=0.15)


class TestSynchronisation:
    def test_wait_blocks_until_post(self, tiny_machine_dram):
        box = Mailbox()

        def producer(t):
            yield t.compute(1000)  # 500 cycles
            yield t.post(box, "ready")

        def consumer(t):
            yield t.wait(box, "ready")
            yield t.compute(2)

        program = Program(tiny_machine_dram)
        program.spawn(producer)
        program.spawn(consumer)
        result = program.run()
        # The consumer cannot have finished before the producer posted.
        assert result.cores[1].cycles >= 500.0
        assert result.cycles >= 500.0

    def test_wait_with_no_partner_deadlocks_cleanly(self, tiny_machine_dram):
        box = Mailbox()

        def body(t):
            yield t.wait(box, "never")

        program = Program(tiny_machine_dram)
        program.spawn(body)
        with pytest.raises(SimulationError, match="deadlock"):
            program.run()


class TestCrossCoreTransfer:
    def test_reading_anothers_write_costs_transfer(self, tiny_machine_b):
        box = Mailbox()

        def writer(t):
            r = t.allocator.regions[0] if t.allocator.regions else t.alloc(128, "shared")
            yield t.write(r.base, 128)
            yield t.fence()  # make it visible
            yield t.post(box, "written")

        def reader(t):
            yield t.wait(box, "written")
            region = t.allocator.regions[0]
            yield t.read(region.base, 8)

        program = Program(tiny_machine_b)
        program.allocator.alloc(128, "shared")
        program.spawn(writer)
        program.spawn(reader)
        result = program.run()
        assert result.cycles > 0  # executed both sides without error
