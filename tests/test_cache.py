"""Unit and property tests for caches and the inclusive hierarchy."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.cache import CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.sim.replacement import make_policy


def _level(size=1024, ways=2, line=64, policy="lru", name="L1", hashed=False, latency=4):
    return CacheLevel(
        CacheLevelSpec(
            name=name, size_bytes=size, ways=ways, hit_latency=latency, hashed_index=hashed
        ),
        line,
        make_policy(policy, seed=3),
    )


def _hierarchy(policy="lru", hashed=False):
    l1 = _level(size=512, ways=2, policy=policy, name="L1")
    l2 = _level(size=2048, ways=4, policy=policy, name="L2", hashed=hashed, latency=12)
    return CacheHierarchy([l1, l2], 64)


class TestCacheLevel:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec(name="bad", size_bytes=1000, ways=3, hit_latency=1).validate(64)

    def test_miss_then_hit(self):
        lvl = _level()
        assert not lvl.access(5, is_write=False)
        lvl.install(5)
        assert lvl.access(5, is_write=False)
        assert lvl.stats.hits == 1 and lvl.stats.misses == 1

    def test_write_sets_dirty(self):
        lvl = _level()
        lvl.install(5)
        assert not lvl.is_dirty(5)
        lvl.access(5, is_write=True)
        assert lvl.is_dirty(5)

    def test_eviction_on_full_set(self):
        lvl = _level(size=256, ways=2)  # 2 sets
        sets = lvl.num_sets
        lines = [i * sets for i in range(3)]  # same set
        for line in lines[:2]:
            assert lvl.install(line) is None
        evicted = lvl.install(lines[2])
        assert evicted is not None
        assert evicted.line in lines[:2]

    def test_dirty_eviction_flag(self):
        lvl = _level(size=256, ways=2)
        sets = lvl.num_sets
        lvl.install(0, dirty=True)
        lvl.install(sets)
        evicted = lvl.install(2 * sets)
        if evicted.line == 0:
            assert evicted.dirty
        else:
            assert not evicted.dirty

    def test_clean_keeps_line_resident(self):
        lvl = _level()
        lvl.install(9, dirty=True)
        assert lvl.clean(9) is True
        assert lvl.contains(9)
        assert not lvl.is_dirty(9)
        assert lvl.clean(9) is False  # second clean owes nothing

    def test_invalidate(self):
        lvl = _level()
        lvl.install(9, dirty=True)
        assert lvl.invalidate(9) == (True, True)
        assert not lvl.contains(9)
        assert lvl.invalidate(9) == (False, False)

    def test_occupancy_bounded_by_capacity(self):
        lvl = _level(size=512, ways=2)
        for line in range(100):
            lvl.install(line)
        assert lvl.occupancy() <= lvl.capacity_lines

    def test_hashed_index_spreads_lines(self):
        plain = _level(size=4096, ways=2)
        hashed = _level(size=4096, ways=2, hashed=True)
        # Consecutive lines map to consecutive sets only without hashing.
        plain_sets = [plain.set_index(i) for i in range(8)]
        hashed_sets = [hashed.set_index(i) for i in range(8)]
        assert plain_sets == [i % plain.num_sets for i in range(8)]
        assert hashed_sets != plain_sets

    def test_walk_lines_matches_residents(self):
        lvl = _level()
        for line in range(20):
            lvl.install(line)
        assert sorted(lvl.walk_lines()) == sorted(lvl.resident_lines())


class TestHierarchy:
    def test_requires_growing_sizes(self):
        big = _level(size=2048, ways=4)
        small = _level(size=512, ways=2)
        with pytest.raises(ConfigurationError):
            CacheHierarchy([big, small], 64)

    def test_miss_fills_all_levels(self):
        h = _hierarchy()
        result = h.access_line(7, is_write=False)
        assert result.memory_access and result.hit_level == "memory"
        assert all(lvl.contains(7) for lvl in h.levels)

    def test_l2_hit_fills_l1(self):
        h = _hierarchy()
        h.access_line(7, is_write=False)
        h.levels[0].invalidate(7)
        result = h.access_line(7, is_write=False)
        assert result.hit_level == "L2"
        assert h.levels[0].contains(7)

    def test_write_dirties_innermost(self):
        h = _hierarchy()
        h.access_line(7, is_write=True)
        assert h.levels[0].is_dirty(7)
        assert not h.levels[1].is_dirty(7)

    def test_clean_line_reports_owed_writeback(self):
        h = _hierarchy()
        h.access_line(7, is_write=True)
        assert h.clean_line(7) is True
        assert h.contains(7)
        assert not h.is_dirty(7)
        assert h.clean_line(7) is False

    def test_demote_moves_dirty_to_last_level(self):
        h = _hierarchy()
        h.access_line(7, is_write=True)
        assert h.demote_line(7) is True
        assert not h.levels[0].contains(7)
        assert h.levels[1].is_dirty(7)

    def test_invalidate_line_reports_dirty(self):
        h = _hierarchy()
        h.access_line(7, is_write=True)
        assert h.invalidate_line(7) is True
        assert not h.contains(7)

    def test_drain_dirty_lines(self):
        h = _hierarchy()
        for line in (1, 2, 3):
            h.access_line(line, is_write=True)
        h.access_line(4, is_write=False)
        owed = h.drain_dirty_lines()
        assert sorted(owed) == [1, 2, 3]
        assert not any(h.is_dirty(line) for line in (1, 2, 3))

    def test_llc_eviction_back_invalidates_inner(self):
        """Inclusion: a line leaving the last level leaves all levels."""
        h = _hierarchy(policy="lru")
        writebacks = []
        touched = set()
        for line in range(200):
            touched.add(line)
            res = h.access_line(line, is_write=False)
            writebacks += res.writebacks
        for line in touched:
            if h.levels[0].contains(line):
                assert h.levels[1].contains(line), "inclusion violated"


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=300), st.booleans()),
        min_size=1,
        max_size=400,
    ),
    policy=st.sampled_from(["lru", "intel-like", "arm-like", "fifo"]),
)
@settings(max_examples=40, deadline=None)
def test_dirty_line_conservation(ops, policy):
    """Property: every dirtied line is written back, still dirty, or was
    re-cleaned by a later writeback — dirt never silently vanishes."""
    h = _hierarchy(policy=policy, hashed=True)
    written_back = set()
    dirtied = set()
    for line, is_write in ops:
        if is_write:
            dirtied.add(line)
        res = h.access_line(line, is_write)
        written_back.update(res.writebacks)
    still_dirty = {line for line in dirtied if h.is_dirty(line)}
    lost = dirtied - written_back - still_dirty
    assert not lost, f"dirty lines lost: {lost}"


@given(
    lines=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
)
@settings(max_examples=40, deadline=None)
def test_no_duplicate_residency(lines):
    """Property: a line occupies at most one way per level."""
    lvl = _level(size=1024, ways=4, policy="intel-like", hashed=True)
    for line in lines:
        lvl.access(line, is_write=False) or lvl.install(line)
    walked = list(lvl.walk_lines())
    assert len(walked) == len(set(walked))
