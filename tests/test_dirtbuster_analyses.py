"""Unit tests for DirtBuster's analyses: contexts, fences, distances."""

import math

import pytest

from repro.dirtbuster.contexts import ContextTracker, MIN_SEQUENTIAL_RUN
from repro.dirtbuster.distances import DistanceTracker
from repro.dirtbuster.fences import FenceTracker


class TestContexts:
    def test_sequential_writes_form_one_context(self):
        tracker = ContextTracker(slack=0)
        for i in range(16):
            tracker.observe_write(0, "f", 1000 + 64 * i, 64)
        summary = tracker.summary("f")
        assert summary.total_writes == 16
        assert summary.pct_sequential == 1.0
        assert len(summary.contexts) == 1
        assert summary.contexts[0].size == 16 * 64

    def test_interleaved_streams_get_separate_contexts(self):
        """The paper's motivation: interleaved writes to two objects."""
        tracker = ContextTracker(slack=0)
        for i in range(8):
            tracker.observe_write(0, "f", 1000 + 64 * i, 64)
            tracker.observe_write(0, "f", 900000 + 64 * i, 64)
        summary = tracker.summary("f")
        assert summary.pct_sequential == 1.0
        assert len(summary.contexts) == 2

    def test_temporaries_between_sequential_writes(self):
        """A stack temporary written between stream writes must not break
        the stream's context."""
        tracker = ContextTracker(slack=0)
        for i in range(8):
            tracker.observe_write(0, "f", 1000 + 64 * i, 64)
            tracker.observe_write(0, "f", 500000, 8)  # the temporary
        summary = tracker.summary("f")
        streams = [c for c in summary.contexts if c.writes >= MIN_SEQUENTIAL_RUN]
        assert len(streams) == 1 and streams[0].size == 8 * 64

    def test_random_writes_are_not_sequential(self):
        import random
        rng = random.Random(4)
        tracker = ContextTracker(slack=0)
        for _ in range(200):
            tracker.observe_write(0, "f", rng.randrange(1 << 20) * 8, 8)
        assert tracker.summary("f").pct_sequential < 0.2

    def test_rewriting_same_address_is_not_sequential(self):
        """Listing 3's hot line must not look like a stream."""
        tracker = ContextTracker(slack=0)
        for _ in range(50):
            tracker.observe_write(0, "f", 4096, 64)
        assert tracker.summary("f").pct_sequential == 0.0

    def test_threads_do_not_pollute_each_other(self):
        tracker = ContextTracker(slack=0)
        for i in range(8):
            tracker.observe_write(0, "f", 1000 + 64 * i, 64)
            tracker.observe_write(1, "f", 5000 + 64 * i, 64)
        assert len(tracker.summary("f").contexts) == 2

    def test_size_buckets(self):
        tracker = ContextTracker(slack=0)
        # Four 1KB streams and one 16KB stream.
        for s in range(4):
            base = 100000 * (s + 1)
            for i in range(16):
                tracker.observe_write(0, "f", base + 64 * i, 64)
        for i in range(256):
            tracker.observe_write(0, "f", 900000 + 64 * i, 64)
        buckets = tracker.summary("f").size_buckets()
        assert len(buckets) == 2
        assert buckets[0].size == pytest.approx(16 * 1024, rel=0.1)
        assert buckets[0].share == pytest.approx(256 / 320)


class TestFences:
    def test_min_distance(self):
        tracker = FenceTracker()
        tracker.observe_write(0, "f", 100)
        tracker.observe_write(0, "f", 190)
        tracker.observe_fence(0, 200)
        prox = tracker.proximity("f")
        assert prox.min_distance == 10
        assert prox.mean_distance == pytest.approx(55.0)
        assert prox.fence_coverage == 1.0

    def test_fences_are_per_core(self):
        tracker = FenceTracker()
        tracker.observe_write(0, "f", 100)
        tracker.observe_fence(1, 101)  # another thread's fence: irrelevant
        prox = tracker.proximity("f")
        assert prox.writes_before_fence == 0
        assert math.isinf(prox.min_distance)

    def test_writes_after_last_fence_uncovered(self):
        tracker = FenceTracker()
        tracker.observe_write(0, "f", 100)
        tracker.observe_fence(0, 150)
        tracker.observe_write(0, "f", 200)
        prox = tracker.proximity("f")
        assert prox.writes == 2
        assert prox.writes_before_fence == 1
        assert prox.writes_without_fence == 1

    def test_unknown_function_is_empty(self):
        prox = FenceTracker().proximity("ghost")
        assert prox.writes == 0 and prox.fence_coverage == 0.0


class TestDistances:
    def test_rewrite_distance(self):
        tracker = DistanceTracker(line_size=64, slack=0)
        tracker.observe_write(0, "f", 0, 64, instr_index=10)
        tracker.observe_write(0, "f", 0, 64, instr_index=110)
        stats = tracker.stats("f")
        assert stats.rewrite_samples == 1
        assert stats.mean_rewrite_distance == 100

    def test_streak_exception(self):
        """Sequential sweeps are not rewrites (Section 6.2.3)."""
        tracker = DistanceTracker(line_size=64, slack=0)
        for rep in range(2):
            for i in range(8):
                tracker.observe_write(0, "f", 64 * i, 64, instr_index=100 * rep + i)
        stats = tracker.stats("f")
        # Only the stream restarts sample (line 0), not every line.
        assert stats.rewrite_samples == 1

    def test_reread_distance_first_read_only(self):
        tracker = DistanceTracker(line_size=64, slack=0)
        tracker.observe_write(0, "f", 0, 64, instr_index=10)
        tracker.observe_read(0, 0, 8, instr_index=12)
        tracker.observe_read(0, 0, 8, instr_index=5000)  # ignored
        stats = tracker.stats("f")
        assert stats.reread_samples == 1
        assert stats.mean_reread_distance == 2

    def test_never_reread_is_infinite(self):
        tracker = DistanceTracker(line_size=64, slack=0)
        tracker.observe_write(0, "f", 0, 64, instr_index=10)
        stats = tracker.stats("f")
        assert math.isinf(stats.mean_reread_distance)
        assert math.isinf(stats.mean_rewrite_distance)

    def test_rewrite_attributed_to_previous_writer(self):
        tracker = DistanceTracker(line_size=64, slack=0)
        tracker.observe_write(0, "first", 0, 64, instr_index=10)
        tracker.observe_write(0, "second", 0, 64, instr_index=60)
        assert tracker.stats("first").rewrite_samples == 1
        assert tracker.stats("second").rewrite_samples == 0

    def test_context_attribution(self):
        tracker = DistanceTracker(line_size=64, slack=0)
        ctx = object()
        tracker.observe_write(0, "f", 0, 64, instr_index=10, context=ctx)
        tracker.observe_read(0, 0, 8, instr_index=30)
        merged = tracker.merged_context_stats([ctx])
        assert merged.reread_samples == 1
        assert merged.mean_reread_distance == 20
