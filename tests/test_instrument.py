"""Unit tests for the step-2/3 instrumenter driver."""

import math

import pytest

from repro.dirtbuster.instrument import Instrumenter
from repro.dirtbuster.trace import AccessRecord
from repro.errors import AnalysisError, ReproError
from repro.sim.event import CodeSite, EventKind


def _rec(kind, addr=0, size=8, fn="f", idx=0, core=0, chain=()):
    return AccessRecord(
        instr_index=idx,
        core_id=core,
        kind=kind,
        addr=addr,
        size=size,
        site=CodeSite(function=fn),
        callchain=tuple(CodeSite(function=c) for c in chain),
    )


class TestInstrumenter:
    def test_rejects_bad_line_size(self):
        with pytest.raises(AnalysisError):
            Instrumenter(line_size=0)

    def test_sequential_writer_pattern(self):
        inst = Instrumenter(line_size=64)
        records = [
            _rec(EventKind.WRITE, addr=64 * i, size=64, idx=i) for i in range(32)
        ]
        inst.feed(records)
        patterns = {p.function: p for p in inst.patterns()}
        assert patterns["f"].pct_sequential == 1.0
        assert patterns["f"].buckets[0].size == 32 * 64

    def test_memcpy_attributed_to_caller(self):
        """Writes inside a helper belong to the instrumented caller."""
        inst = Instrumenter(line_size=64, functions={"put"})
        records = [
            _rec(EventKind.WRITE, addr=64 * i, size=64, fn="memcpy", idx=i, chain=("put",))
            for i in range(8)
        ]
        inst.feed(records)
        patterns = {p.function: p for p in inst.patterns()}
        assert "put" in patterns and "memcpy" not in patterns
        assert patterns["put"].total_writes == 8

    def test_unselected_functions_ignored(self):
        inst = Instrumenter(line_size=64, functions={"hot"})
        inst.feed([_rec(EventKind.WRITE, fn="cold", size=64)])
        assert inst.patterns() == []

    def test_fence_distance_flows_through(self):
        inst = Instrumenter(line_size=64)
        inst.feed(
            [
                _rec(EventKind.WRITE, addr=0, size=64, idx=100),
                _rec(EventKind.ATOMIC, addr=4096, size=8, fn="lock", idx=110),
            ]
        )
        patterns = {p.function: p for p in inst.patterns()}
        assert patterns["f"].fences.min_distance == 10

    def test_reread_distance_per_bucket(self):
        inst = Instrumenter(line_size=64)
        records = []
        for i in range(8):
            records.append(_rec(EventKind.WRITE, addr=64 * i, size=64, idx=i))
        records.append(_rec(EventKind.READ, addr=0, size=8, idx=20))
        inst.feed(records)
        pattern = inst.patterns()[0]
        assert pattern.buckets[0].reread == 20  # first write at idx 0
        assert math.isinf(pattern.buckets[0].rewrite)

    def test_patterns_sorted_by_write_volume(self):
        inst = Instrumenter(line_size=64)
        records = [_rec(EventKind.WRITE, addr=64 * i, size=64, fn="big", idx=i) for i in range(16)]
        records += [
            _rec(EventKind.WRITE, addr=100_000 + 64 * i, size=64, fn="small", idx=100 + i)
            for i in range(4)
        ]
        inst.feed(records)
        assert [p.function for p in inst.patterns()] == ["big", "small"]


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "SimulationError",
            "AllocationError",
            "TraceError",
            "AnalysisError",
            "WorkloadError",
            "ExperimentError",
        ):
            assert issubclass(getattr(errors, name), ReproError)
