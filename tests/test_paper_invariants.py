"""Cross-cutting invariants from the paper, verified on the simulator.

These are integration tests tying the substrate's mechanisms to the
specific causal claims in Sections 4 and 6.
"""

from dataclasses import replace

import pytest

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.workloads.microbench import Listing1, Listing2


class TestFigure2Mechanism:
    """'If the cache evicted data in the order it was written, pre-storing
    would have no impact' — strict LRU is the counterfactual."""

    def test_lru_has_no_write_amplification(self, tiny_machine_a):
        # Strict LRU *and* plain modulo indexing: the idealised cache of
        # Figure 2, which evicts in written order.  (Slice-hashed set
        # indexing alone already scrambles block neighbours.)
        from repro.sim.cache import CacheLevelSpec

        plain_levels = tuple(
            CacheLevelSpec(
                name=lvl.name,
                size_bytes=lvl.size_bytes,
                ways=lvl.ways,
                hit_latency=lvl.hit_latency,
                hashed_index=False,
            )
            for lvl in tiny_machine_a.cache_levels
        )
        lru = replace(
            tiny_machine_a, replacement_policy="lru", cache_levels=plain_levels, num_cores=1
        )
        w = Listing1(element_size=1024, num_elements=256, iterations=400, threads=1)
        result = w.run(lru, PatchConfig.baseline())
        assert result.run.write_amplification == pytest.approx(1.0, abs=0.25)

    def test_pseudo_random_policy_amplifies(self, tiny_machine_a):
        intel = replace(tiny_machine_a, replacement_policy="intel-like", num_cores=1)
        w = Listing1(element_size=1024, num_elements=256, iterations=400, threads=1)
        result = w.run(intel, PatchConfig.baseline())
        assert result.run.write_amplification > 1.5

    def test_more_threads_scramble_more(self, tiny_machine_a):
        def wa(threads):
            w = Listing1(
                element_size=1024, num_elements=256, iterations=600, threads=threads
            )
            return w.run(tiny_machine_a, PatchConfig.baseline()).run.write_amplification

        assert wa(4) >= wa(1) - 0.15  # interleaving never helps sequentiality


class TestFigure4Mechanism:
    """Demotion overlaps the visibility round trip with later work."""

    def test_no_window_no_gain(self, tiny_machine_b):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
            w = Listing2(reads_before_fence=0, iterations=400)
            runs[mode] = w.run(tiny_machine_b, PatchConfig({w.SITE.name: mode})).run
        gain = 1 - runs[PrestoreMode.DEMOTE].cycles / runs[PrestoreMode.NONE].cycles
        assert abs(gain) < 0.10

    def test_window_brings_gain(self, tiny_machine_b):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
            w = Listing2(reads_before_fence=25, iterations=400)
            runs[mode] = w.run(tiny_machine_b, PatchConfig({w.SITE.name: mode})).run
        gain = 1 - runs[PrestoreMode.DEMOTE].cycles / runs[PrestoreMode.NONE].cycles
        assert gain > 0.15

    def test_gain_vanishes_when_reads_dominate(self, tiny_machine_b):
        def gain(nreads):
            runs = {}
            for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
                w = Listing2(reads_before_fence=nreads, iterations=300)
                runs[mode] = w.run(tiny_machine_b, PatchConfig({w.SITE.name: mode})).run
            return 1 - runs[PrestoreMode.DEMOTE].cycles / runs[PrestoreMode.NONE].cycles

        assert gain(400) < gain(25)


class TestGranularityMechanism:
    """WA requires a granularity mismatch: DRAM (64B) cannot amplify."""

    def test_dram_has_no_amplification(self, tiny_machine_dram):
        w = Listing1(element_size=1024, num_elements=256, iterations=400, threads=2)
        result = w.run(tiny_machine_dram, PatchConfig.baseline())
        assert result.run.write_amplification == pytest.approx(1.0, abs=0.01)

    def test_cleaning_on_dram_changes_little(self, tiny_machine_dram):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
            w = Listing1(element_size=1024, num_elements=256, iterations=400, threads=2)
            runs[mode] = w.run(tiny_machine_dram, PatchConfig({w.SITE.name: mode})).run
        ratio = (
            runs[PrestoreMode.CLEAN].cycles_with_drain
            / runs[PrestoreMode.NONE].cycles_with_drain
        )
        assert 0.8 < ratio < 1.25
